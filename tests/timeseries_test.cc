#include "util/timeseries.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "tests/sched_test_util.h"
#include "util/metrics.h"

namespace ftms {
namespace {

TEST(TimeSeriesTest, AppendKeepsPointsInOrder) {
  TimeSeriesRecorder rec(/*capacity=*/16);
  const int id = rec.DefineSeries("s");
  for (int i = 0; i < 10; ++i) rec.Append(id, i * 100, i * 1.5);
  const auto pts = rec.SeriesPoints("s");
  ASSERT_EQ(pts.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pts[i].t_us, i * 100);
    EXPECT_EQ(pts[i].v, i * 1.5);
  }
  EXPECT_EQ(rec.SeriesStride("s"), 1);
}

TEST(TimeSeriesTest, DefineSeriesIsIdempotent) {
  TimeSeriesRecorder rec(8);
  EXPECT_EQ(rec.DefineSeries("a"), rec.DefineSeries("a"));
  EXPECT_NE(rec.DefineSeries("a"), rec.DefineSeries("b"));
  EXPECT_EQ(rec.num_series(), 2u);
}

TEST(TimeSeriesTest, DownsamplingBoundsCapacity) {
  constexpr size_t kCapacity = 8;
  TimeSeriesRecorder rec(kCapacity);
  const int id = rec.DefineSeries("ring");
  // Far more appends than capacity: the ring must never exceed capacity
  // and the stride must double at every decimation.
  for (int i = 0; i < 1000; ++i) {
    rec.Append(id, i * 10, static_cast<double>(i));
    EXPECT_LE(rec.SeriesPoints("ring").size(), kCapacity)
        << "after append " << i;
  }
  const int64_t stride = rec.SeriesStride("ring");
  EXPECT_GT(stride, 1);
  // Stride is a power of two (doubles on every fold).
  EXPECT_EQ(stride & (stride - 1), 0);
}

TEST(TimeSeriesTest, DownsampledPointsStayMonotoneAndUniform) {
  TimeSeriesRecorder rec(8);
  const int id = rec.DefineSeries("ring");
  for (int i = 0; i < 100; ++i) rec.Append(id, i * 10, static_cast<double>(i));
  const auto pts = rec.SeriesPoints("ring");
  const int64_t stride = rec.SeriesStride("ring");
  ASSERT_GE(pts.size(), 2u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].t_us, pts[i - 1].t_us);
    // Decimation keeps a uniform cadence: consecutive survivors are
    // exactly stride appends apart.
    EXPECT_EQ(pts[i].t_us - pts[i - 1].t_us, stride * 10);
  }
  // Survivors are real appended points, value matching their timestamp.
  for (const auto& p : pts) {
    EXPECT_EQ(p.v, static_cast<double>(p.t_us / 10));
  }
}

TEST(TimeSeriesTest, PullModelCounterRateAndGauge) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reads_total", "reads");
  Gauge* g = registry.GetGauge("depth", "queue depth");
  TimeSeriesRecorder rec(64);
  rec.AddCounterSeries("reads_rate", c, /*as_rate=*/true);
  rec.AddGaugeSeries("depth", g);

  c->Add(100);
  g->Set(7);
  rec.Sample(1'000'000);  // first sample: rate records 0
  c->Add(50);
  g->Set(3);
  rec.Sample(2'000'000);  // +50 over 1 simulated second -> 50/s

  const auto rate = rec.SeriesPoints("reads_rate");
  ASSERT_EQ(rate.size(), 2u);
  EXPECT_EQ(rate[0].v, 0);
  EXPECT_EQ(rate[1].v, 50);
  const auto depth = rec.SeriesPoints("depth");
  ASSERT_EQ(depth.size(), 2u);
  EXPECT_EQ(depth[0].v, 7);
  EXPECT_EQ(depth[1].v, 3);
}

TEST(TimeSeriesTest, SampleIsGatedPerTimestamp) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("v", "value");
  TimeSeriesRecorder rec(64);
  rec.AddGaugeSeries("v", g);
  rec.Sample(500);
  rec.Sample(500);  // duplicate sync point at the same simulated time
  EXPECT_EQ(rec.SeriesPoints("v").size(), 1u);
}

TEST(TimeSeriesTest, JsonAndCsvShapes) {
  TimeSeriesRecorder rec(8);
  const int id = rec.DefineSeries("b");
  rec.DefineSeries("a");  // defined second, but dumps sort by name
  rec.Append(id, 100, 1.5);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
  EXPECT_NE(json.find("\"t\": [100]"), std::string::npos);
  EXPECT_NE(json.find("\"v\": [1.5]"), std::string::npos);
  const std::string csv = rec.ToCsv();
  EXPECT_NE(csv.find("series,t_us,value"), std::string::npos);
  EXPECT_NE(csv.find("b,100,1.5"), std::string::npos);
}

// The acceptance contract for the whole subsystem: a scheduler run's
// time-series dump is byte-identical at any thread count, because every
// push happens at a serial sync point from deterministically-folded
// state. Series names carry a process-wide instance number (so rigs
// sharing one recorder stay distinct); normalize it out before
// comparing dumps from two rigs in this one process.
std::string RunAndDump(int threads) {
  TimeSeriesRecorder rec(/*capacity=*/256);
  RigOptions options;
  options.threads = threads;
  options.timeseries = &rec;
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 100, options);
  const int clusters = rig.layout->num_clusters();
  for (int i = 0; i < 1040; ++i) {
    rig.sched->AddStream(TestObject(i % clusters, 100000)).value();
  }
  rig.sched->RunCycles(20);
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
  rig.sched->RunCycles(20);
  rig.sched->OnDiskRepaired(1);
  rig.sched->RunCycles(10);

  std::string json = rec.ToJson();
  const std::string prefix = rig.sched->timeseries_prefix();
  for (size_t pos = json.find(prefix); pos != std::string::npos;
       pos = json.find(prefix, pos + 1)) {
    json.replace(pos, prefix.size(), "SR.X");
  }
  return json;
}

TEST(TimeSeriesTest, SchedulerDumpByteIdenticalAcrossThreadCounts) {
  const std::string serial = RunAndDump(/*threads=*/1);
  const std::string parallel = RunAndDump(/*threads=*/8);
  EXPECT_EQ(serial, parallel);
  // And the run actually produced curves worth comparing.
  EXPECT_NE(serial.find("degraded_reads"), std::string::npos);
  EXPECT_NE(serial.find("buffer_in_use"), std::string::npos);
}

}  // namespace
}  // namespace ftms
