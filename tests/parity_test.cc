#include "parity/parity.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/random.h"

namespace ftms {
namespace {

Block RandomBlock(Rng& rng, size_t size) {
  Block b(size);
  for (auto& byte : b) byte = static_cast<uint8_t>(rng.NextUint64());
  return b;
}

TEST(XorTest, XorIntoIsInvolutive) {
  Rng rng(1);
  Block a = RandomBlock(rng, 1000);
  const Block original = a;
  const Block b = RandomBlock(rng, 1000);
  XorInto(a, b);
  EXPECT_NE(a, original);
  XorInto(a, b);
  EXPECT_EQ(a, original);
}

TEST(XorTest, HandlesNonWordSizes) {
  // Tail bytes beyond the 8-byte main loop must be XOR'd too.
  for (size_t size : {1u, 7u, 8u, 9u, 15u, 17u, 63u}) {
    Rng rng(size);
    Block a = RandomBlock(rng, size);
    Block b = RandomBlock(rng, size);
    Block expected(size);
    for (size_t i = 0; i < size; ++i) {
      expected[i] = static_cast<uint8_t>(a[i] ^ b[i]);
    }
    XorInto(a, b);
    EXPECT_EQ(a, expected) << "size " << size;
  }
}

TEST(ParityTest, ComputeParityRejectsEmptyAndMismatched) {
  EXPECT_FALSE(ComputeParity({}).ok());
  std::vector<Block> blocks = {Block(8, 1), Block(9, 2)};
  EXPECT_FALSE(ComputeParity(blocks).ok());
}

TEST(ParityTest, GroupVerifies) {
  Rng rng(2);
  std::vector<Block> data;
  for (int i = 0; i < 4; ++i) data.push_back(RandomBlock(rng, 512));
  const Block parity = ComputeParity(data).value();
  EXPECT_TRUE(VerifyGroup(data, parity).value());
  // Corrupt one byte: verification fails.
  std::vector<Block> corrupted = data;
  corrupted[2][100] = static_cast<uint8_t>(corrupted[2][100] ^ 0xff);
  EXPECT_FALSE(VerifyGroup(corrupted, parity).value());
}

TEST(ParityTest, AccumulatorEqualsBatchParity) {
  Rng rng(3);
  std::vector<Block> data;
  for (int i = 0; i < 6; ++i) data.push_back(RandomBlock(rng, 256));
  ParityAccumulator acc;
  for (const Block& b : data) ASSERT_TRUE(acc.Add(b).ok());
  EXPECT_EQ(acc.count(), 6);
  const Block incremental = acc.Take();
  EXPECT_EQ(incremental, ComputeParity(data).value());
  EXPECT_TRUE(acc.empty());
}

TEST(ParityTest, AccumulatorRejectsSizeMismatch) {
  ParityAccumulator acc;
  ASSERT_TRUE(acc.Add(Block(16, 0)).ok());
  EXPECT_FALSE(acc.Add(Block(8, 0)).ok());
}

// Property: for any group size, block size and erased position, the
// missing block is reconstructed exactly — the paper's degraded-mode read
// path (Section 3's "A0 xor A1" buffering included).
class ReconstructionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReconstructionProperty, SingleErasureAlwaysRecovered) {
  const int group_data_blocks = std::get<0>(GetParam());
  const int block_size = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(group_data_blocks * 1000 + block_size));

  std::vector<Block> data;
  for (int i = 0; i < group_data_blocks; ++i) {
    data.push_back(RandomBlock(rng, static_cast<size_t>(block_size)));
  }
  const Block parity = ComputeParity(data).value();

  for (int erased = 0; erased < group_data_blocks; ++erased) {
    std::vector<Block> survivors;
    for (int i = 0; i < group_data_blocks; ++i) {
      if (i != erased) survivors.push_back(data[static_cast<size_t>(i)]);
    }
    const Block rebuilt = ReconstructMissing(survivors, parity).value();
    EXPECT_EQ(rebuilt, data[static_cast<size_t>(erased)])
        << "erased " << erased;
  }
}

TEST_P(ReconstructionProperty, DeferredPrefixXorPathRecovers) {
  // Section 3 deferred transition: the prefix of delivered blocks is kept
  // only as a running XOR; reconstruction folds prefix-XOR, suffix blocks
  // and parity.
  const int group_data_blocks = std::get<0>(GetParam());
  const int block_size = std::get<1>(GetParam());
  if (group_data_blocks < 2) GTEST_SKIP();
  Rng rng(static_cast<uint64_t>(group_data_blocks * 7 + block_size));

  std::vector<Block> data;
  for (int i = 0; i < group_data_blocks; ++i) {
    data.push_back(RandomBlock(rng, static_cast<size_t>(block_size)));
  }
  const Block parity = ComputeParity(data).value();

  for (int erased = 1; erased < group_data_blocks; ++erased) {
    ParityAccumulator prefix;
    for (int i = 0; i < erased; ++i) {
      ASSERT_TRUE(prefix.Add(data[static_cast<size_t>(i)]).ok());
    }
    std::vector<Block> survivors;
    survivors.push_back(prefix.Take());  // one buffer instead of `erased`
    for (int i = erased + 1; i < group_data_blocks; ++i) {
      survivors.push_back(data[static_cast<size_t>(i)]);
    }
    const Block rebuilt = ReconstructMissing(survivors, parity).value();
    EXPECT_EQ(rebuilt, data[static_cast<size_t>(erased)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupAndBlockSizes, ReconstructionProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 9),
                       ::testing::Values(1, 16, 100, 1024)));

}  // namespace
}  // namespace ftms
