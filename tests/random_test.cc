#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftms {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t x = rng.UniformInt(10);
    ASSERT_LT(x, 10u);
    ++counts[static_cast<size_t>(x)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9000);  // ~10000 each
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(99);
  const double mean = 300.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.ExponentialMean(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.271);
  double sum = 0;
  for (int r = 0; r < zipf.n(); ++r) sum += zipf.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfDistribution zipf(100, 0.8);
  for (int r = 1; r < zipf.n(); ++r) {
    EXPECT_GE(zipf.Pmf(0), zipf.Pmf(r));
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 0.5);
  Rng rng(31);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  for (int r = 0; r < 20; ++r) {
    const double expected = zipf.Pmf(r) * n;
    EXPECT_NEAR(counts[static_cast<size_t>(r)], expected,
                5 * std::sqrt(expected) + 5);
  }
}

}  // namespace
}  // namespace ftms
