// Telemetry plane tests: hub snapshot publication, the HTTP exporter's
// endpoint contract (socketless via Handle() and over real sockets), and
// concurrent scrapes against a live failure + rebuild drill. The socket
// tests bind port 0 on 127.0.0.1 only. Runs under the perf_smoke label so
// the TSan CI job exercises the scrape/publish race surface.
#include "telemetry/telemetry_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qos/event_journal.h"
#include "server/server.h"
#include "telemetry/http.h"
#include "util/metrics.h"

namespace ftms {
namespace {

HttpRequest Get(const std::string& target) {
  return ParseHttpRequestHead("GET " + target + " HTTP/1.1\r\n\r\n").value();
}

// A hub with one published snapshot carrying controllable state.
struct HubRig {
  TelemetryHub hub;
  MetricsRegistry metrics;
  EventJournal journal{/*max_events=*/0};
  bool rebuild_active = false;
  int64_t breaches = 0;

  HubRig() {
    metrics.GetCounter("ftms_test_total", "A counter for the test")->Add(7);
    hub.AttachMetrics(&metrics);
    hub.AttachJournal(&journal);
    hub.AddProbe([this](TelemetrySnapshot* snap) {
      snap->rebuild_active = rebuild_active;
      snap->active_breaches = breaches;
    });
  }

  std::unique_ptr<TelemetryServer> Serve() {
    auto server = std::move(
        TelemetryServer::Start(&hub, TelemetryServerOptions()).value());
    return server;
  }
};

TEST(TelemetryHubTest, PublishBumpsSequenceAndSwapsSnapshot) {
  HubRig rig;
  EXPECT_EQ(rig.hub.Latest()->seq, 0u);  // pre-publish empty snapshot
  rig.hub.Publish(1000);
  const auto first = rig.hub.Latest();
  EXPECT_EQ(first->seq, 1u);
  EXPECT_EQ(first->sim_us, 1000);
  EXPECT_NE(first->metrics_prom.find("ftms_test_total 7"),
            std::string::npos);
  rig.hub.Publish(2000);
  const auto second = rig.hub.Latest();
  EXPECT_EQ(second->seq, 2u);
  // The first snapshot is immutable; readers holding it see old state.
  EXPECT_EQ(first->sim_us, 1000);
}

TEST(TelemetryHubTest, ReadinessTracksRebuildAndBreaches) {
  HubRig rig;
  rig.hub.Publish(0);
  EXPECT_TRUE(rig.hub.Latest()->ready());
  rig.rebuild_active = true;
  rig.hub.Publish(0);
  EXPECT_FALSE(rig.hub.Latest()->ready());
  rig.rebuild_active = false;
  rig.breaches = 2;
  rig.hub.Publish(0);
  EXPECT_FALSE(rig.hub.Latest()->ready());
  rig.breaches = 0;
  rig.hub.Publish(0);
  EXPECT_TRUE(rig.hub.Latest()->ready());
}

TEST(TelemetryServerTest, HandleRoutesEndpointsSocketlessly) {
  HubRig rig;
  rig.hub.Publish(5000000);
  auto server = rig.Serve();

  HttpResponse metrics = server->Handle(Get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, kPrometheusContentType);
  EXPECT_NE(metrics.body.find("# HELP ftms_test_total"), std::string::npos);

  EXPECT_EQ(server->Handle(Get("/healthz")).body, "ok\n");
  EXPECT_EQ(server->Handle(Get("/readyz")).status, 200);
  EXPECT_EQ(server->Handle(Get("/vars")).content_type, "application/json");
  EXPECT_EQ(server->Handle(Get("/nope")).status, 404);

  HttpRequest post = Get("/metrics");
  post.method = "POST";
  EXPECT_EQ(server->Handle(post).status, 405);

  HttpRequest head = Get("/metrics");
  head.method = "HEAD";
  const HttpResponse head_response = server->Handle(head);
  EXPECT_EQ(head_response.status, 200);
  EXPECT_TRUE(head_response.body.empty());
}

TEST(TelemetryServerTest, ReadyzReports503WithReasons) {
  HubRig rig;
  rig.rebuild_active = true;
  rig.breaches = 1;
  rig.hub.Publish(0);
  auto server = rig.Serve();
  const HttpResponse response = server->Handle(Get("/readyz"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("rebuild in flight"), std::string::npos);
  EXPECT_NE(response.body.find("1 active breach"), std::string::npos);
}

TEST(TelemetryServerTest, JournalTailBoundsAndValidation) {
  HubRig rig;
  for (int i = 0; i < 5; ++i) {
    QosEvent e;
    e.kind = QosEventKind::kHiccups;
    e.scheme = "SR";
    e.cycle = i;
    rig.journal.Append(e);
  }
  rig.hub.Publish(0);
  auto server = rig.Serve();

  // Default tail, bounded tail, over-ask, zero, and malformed n.
  HttpResponse all = server->Handle(Get("/journal/tail"));
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.content_type, "application/x-ndjson");
  HttpResponse two = server->Handle(Get("/journal/tail?n=2"));
  int lines = 0;
  for (const char c : two.body) lines += c == '\n';
  EXPECT_EQ(lines, 2);
  // The tail is the NEWEST two events.
  EXPECT_NE(two.body.find("\"cycle\":3"), std::string::npos);
  EXPECT_NE(two.body.find("\"cycle\":4"), std::string::npos);
  EXPECT_EQ(server->Handle(Get("/journal/tail?n=100")).body, all.body);
  EXPECT_TRUE(server->Handle(Get("/journal/tail?n=0")).body.empty());
  EXPECT_EQ(server->Handle(Get("/journal/tail?n=-1")).status, 400);
  EXPECT_EQ(server->Handle(Get("/journal/tail?n=bogus")).status, 400);
}

TEST(TelemetryServerTest, BindsEphemeralPortAndServesOverSocket) {
  HubRig rig;
  rig.hub.Publish(0);
  auto server = rig.Serve();
  ASSERT_GT(server->port(), 0);

  const auto health = HttpGet(server->url() + "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  const auto missing = HttpGet(server->url() + "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_GE(server->requests_served(), 2u);
}

TEST(TelemetryServerTest, StopIsIdempotentAndJoinsTheThread) {
  HubRig rig;
  rig.hub.Publish(0);
  auto server = rig.Serve();
  const std::string url = server->url();
  server->Stop();
  server->Stop();  // second call is a no-op
  EXPECT_FALSE(HttpGet(url + "/healthz", /*timeout_ms=*/500).ok());
  // Destruction after an explicit Stop is clean too (covered by scope).
}

TEST(TelemetryServerTest, ConcurrentScrapesDuringRunningDrill) {
  // The acceptance scenario: an SR failure + rebuild drill runs while
  // scraper threads hammer every endpoint. Publication happens at cycle
  // boundaries on the drill thread; scrapes must always see a complete
  // snapshot (TSan-clean under the perf_smoke CI job).
  ServerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  config.params.disk.capacity_mb = 2.5;  // tiny disks: fast rebuild
  config.slots_per_disk = 4;
  config.telemetry_port = 0;
  auto server = std::move(MultimediaServer::Create(config).value());
  ASSERT_NE(server->telemetry_server(), nullptr);
  const std::string url = server->telemetry_server()->url();

  MediaObject movie;
  movie.id = 0;
  movie.rate_mb_s = 0.1875;
  movie.num_tracks = 200;
  ASSERT_TRUE(server->AddObject(movie).ok());
  for (int i = 0; i < 3; ++i) server->StartStream(0).value();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (const char* endpoint : {"/metrics", "/vars", "/readyz",
                               "/journal/tail?n=8"}) {
    scrapers.emplace_back([&, endpoint] {
      while (!done.load(std::memory_order_acquire)) {
        const auto response = HttpGet(url + endpoint);
        if (!response.ok()) {
          failures.fetch_add(1);
        } else {
          scrapes.fetch_add(1);
        }
      }
    });
  }

  server->RunCycles(3);
  ASSERT_TRUE(server->FailDisk(1).ok());
  ASSERT_TRUE(server->StartRebuild(1).ok());
  int guard = 0;
  while (server->rebuild().Active() && ++guard < 200) {
    server->RunCycles(1);
  }
  EXPECT_FALSE(server->rebuild().Active());
  // The drill outruns the scrapers by orders of magnitude; keep the
  // publisher cycling until every endpoint has been scraped a few times
  // so the test actually overlaps scrapes with publications.
  guard = 0;
  while (scrapes.load() < 12 && ++guard < 20000) {
    server->RunCycles(1);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();

  EXPECT_GE(scrapes.load(), 12);
  EXPECT_EQ(failures.load(), 0);
  // The last published snapshot reflects the drill's end state.
  const auto final_scrape = HttpGet(url + "/readyz");
  ASSERT_TRUE(final_scrape.ok());
  EXPECT_EQ(final_scrape->status, 200);
}

TEST(TelemetryServerTest, TopOnceJsonRoundTripsAgainstLiveDrill) {
  // `ftms top <url> --once --json` must emit exactly the /vars document.
  // Needs the CLI binary; the ctest wiring passes it via FTMS_CLI_BIN.
  const char* cli = std::getenv("FTMS_CLI_BIN");
  if (cli == nullptr || cli[0] == '\0') {
    GTEST_SKIP() << "FTMS_CLI_BIN not set";
  }

  HubRig rig;
  rig.hub.Publish(42);
  auto server = rig.Serve();

  const std::string out_path =
      ::testing::TempDir() + "/top_once_json_out.json";
  const std::string command = std::string(cli) + " top " + server->url() +
                              " --once --json > " + out_path;
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::ifstream in(out_path);
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(body, rig.hub.Latest()->vars_json);
  std::remove(out_path.c_str());

  // The human-readable frame renders against the same endpoint.
  ASSERT_EQ(std::system((std::string(cli) + " top " + server->url() +
                         " --once > /dev/null")
                            .c_str()),
            0);
}

}  // namespace
}  // namespace ftms
