#include "sched/improved_bandwidth_scheduler.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kDisks = 8;  // two clusters of C-1 = 4 disks (Figure 8)

TEST(ImprovedBandwidthTest, NoParityReadsInNormalMode) {
  // The whole point of the scheme: all disks serve data, no bandwidth
  // idles in reserve (Section 4).
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(6);
  EXPECT_EQ(rig.sched->FindStream(id)->state(), StreamState::kCompleted);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
  EXPECT_EQ(rig.sched->metrics().parity_reads, 0);
  EXPECT_EQ(rig.sched->metrics().data_reads, 16);
}

TEST(ImprovedBandwidthTest, BufferPeakIsTwoCMinusOnePerStream) {
  // Equation (15): 2(C-1) buffers per stream — no parity block is held.
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->AddStream(TestObject(2, 400)).value();
  rig.sched->RunCycles(10);
  EXPECT_EQ(rig.sched->buffer_pool().peak_in_use(), 2 * (kC - 1) * 2);
}

TEST(ImprovedBandwidthTest, CycleBoundaryFailureIsMasked) {
  // Failure known at the start of the cycle: the scheduler substitutes
  // the parity read on the neighbor cluster; no hiccup.
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);
  rig.sched->RunCycles(20);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 0);
  EXPECT_GT(rig.sched->metrics().parity_reads, 0);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
}

TEST(ImprovedBandwidthTest, MidCycleFailureCausesOneIsolatedHiccup) {
  // Section 4: parity is NOT read concurrently, so a failure in the
  // middle of a cycle loses the tracks already scheduled on that disk —
  // one hiccup per affected stream — after which parity substitution
  // masks everything.
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/true);
  rig.sched->RunCycles(20);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 1);
}

TEST(ImprovedBandwidthTest, PrefetchParityMasksMidCycleFailure) {
  // The "sophisticated scheduler" sketched in Section 4: under light
  // load, read parity proactively so even mid-cycle failures are masked.
  RigOptions options;
  options.ib_prefetch_parity = true;
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks, options);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/true);
  rig.sched->RunCycles(20);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(ImprovedBandwidthTest, ShiftToTheRightDisplacesLocalReads) {
  // Saturate the parity disk's cluster so the substituted parity read
  // must displace a local data read, which cascades right (Section 4).
  RigOptions options;
  options.slots_per_disk = 1;  // every disk fully booked by one stream
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks, options);
  // One stream per cluster, same phase: every disk carries exactly one
  // read per cycle; there is NO idle slot anywhere.
  const StreamId a = rig.sched->AddStream(TestObject(0, 400)).value();
  const StreamId b = rig.sched->AddStream(TestObject(1, 400)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(12);
  // The shift found no idle capacity in a 2-cluster ring: degradation of
  // service events were recorded (dropped tracks / cascades).
  EXPECT_GT(rig.sched->metrics().shift_cascades +
                rig.sched->metrics().degradation_events,
            0);
  const int64_t total_hiccups = rig.sched->FindStream(a)->hiccup_count() +
                                rig.sched->FindStream(b)->hiccup_count();
  EXPECT_GT(total_hiccups, 0);
}

TEST(ImprovedBandwidthTest, IdleCapacityAbsorbsTheShift) {
  // With spare slots (the K_IB reservation of Section 4), the same
  // failure is fully masked: the parity reads fit into idle capacity.
  RigOptions options;
  options.slots_per_disk = 2;  // one spare slot per disk
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks, options);
  const StreamId a = rig.sched->AddStream(TestObject(0, 400)).value();
  const StreamId b = rig.sched->AddStream(TestObject(1, 400)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(12);
  EXPECT_EQ(rig.sched->FindStream(a)->hiccup_count(), 0);
  EXPECT_EQ(rig.sched->FindStream(b)->hiccup_count(), 0);
  EXPECT_EQ(rig.sched->metrics().degradation_events, 0);
}

TEST(ImprovedBandwidthTest, AdjacentClusterSecondFailureIsCatastrophic) {
  // Disks belong to two parity groups' worlds (Figure 8's disk 4): a
  // second failure one cluster to the right can take out the parity a
  // degraded group depends on.
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, false);
  // Fail all of cluster 1's disks' worth? One suffices if it holds the
  // parity of an affected group; failing all four guarantees it.
  for (int d = 4; d < 8; ++d) rig.sched->OnDiskFailed(d, false);
  rig.sched->RunCycles(20);
  EXPECT_GT(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(ImprovedBandwidthTest, RepairRestoresFullBandwidth) {
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->OnDiskFailed(1, false);
  rig.sched->RunCycles(8);
  rig.sched->OnDiskRepaired(1);
  const int64_t parity_reads = rig.sched->metrics().parity_reads;
  rig.sched->RunCycles(12);
  EXPECT_EQ(rig.sched->metrics().parity_reads, parity_reads);
}

}  // namespace
}  // namespace ftms
