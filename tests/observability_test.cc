// End-to-end instrumentation test: an instrumented failure + degraded +
// rebuild run publishes a complete, correctly-attributed picture into a
// private MetricsRegistry and Tracer, and does so deterministically at any
// thread count (the ISSUE acceptance scenario).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "layout/schemes.h"
#include "server/rebuild_manager.h"
#include "telemetry/telemetry_server.h"
#include "tests/sched_test_util.h"
#include "util/metrics.h"
#include "util/trace_event.h"

namespace ftms {
namespace {

constexpr int kFailedDisk = 1;  // cluster 0 with 10 disks, C = 5

// Runs the canonical scenario: warm-up, disk failure, degraded service,
// rebuild to completion, cooldown. Returns the rig for extra checks.
SchedRig RunFailureRebuildScenario(Scheme scheme, MetricsRegistry* registry,
                                   Tracer* tracer, int threads) {
  RigOptions options;
  options.metrics = registry;
  options.tracer = tracer;
  options.threads = threads;
  // 50-track disks so the idle-slot rebuild finishes quickly even for the
  // short-cycle schemes (SG/NC have ~12 rebuild slots per cycle).
  options.disk_capacity_mb = 2.5;
  SchedRig rig = MakeRig(scheme, 5, 10, options);
  for (int i = 0; i < 2; ++i) {
    rig.sched->AddStream(TestObject(i, 60)).value();
  }
  for (int i = 0; i < 3; ++i) rig.sched->RunCycle();
  rig.sched->OnDiskFailed(kFailedDisk, false);
  for (int i = 0; i < 6; ++i) rig.sched->RunCycle();

  RebuildManager rebuild(rig.disks.get(), rig.layout.get(), rig.sched.get());
  EXPECT_TRUE(rebuild.StartRebuild(kFailedDisk).ok());
  int guard = 0;
  while (rebuild.Active() && ++guard < 500) {
    rig.sched->RunCycle();
    rebuild.AdvanceOneCycle();
  }
  EXPECT_FALSE(rebuild.Active());
  EXPECT_EQ(rebuild.rebuilds_completed(), 1);
  for (int i = 0; i < 2; ++i) rig.sched->RunCycle();
  return rig;
}

// Registry text with timing-dependent series (wall-clock histograms)
// removed; everything left is the deterministic contract.
std::string DeterministicText(const MetricsRegistry& registry) {
  std::istringstream in(registry.PrometheusText());
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("wall") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class ObservabilityTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(ObservabilityTest, FailureRebuildRunIsFullyInstrumented) {
  const Scheme scheme = GetParam();
  MetricsRegistry registry;
  Tracer tracer(4096);
  SchedRig rig =
      RunFailureRebuildScenario(scheme, &registry, &tracer, /*threads=*/1);
  const std::string abbrev(SchemeAbbrev(scheme));

  // Per-disk utilization series covers EVERY disk of the farm, and the
  // farm did real work.
  int64_t busy_total = 0;
  for (int d = 0; d < rig.disks->num_disks(); ++d) {
    const Counter* c = registry.FindCounter(
        LabeledName("ftms_sched_disk_busy_slots_total",
                    {{"scheme", abbrev}, {"disk", std::to_string(d)}}));
    ASSERT_NE(c, nullptr) << "no utilization series for disk " << d;
    busy_total += c->value();
  }
  EXPECT_GT(busy_total, 0);

  // Degraded reads are attributed to the affected cluster ONLY.
  const int affected = rig.disks->ClusterOf(kFailedDisk);
  int64_t degraded_affected = 0;
  for (int cl = 0; cl < rig.layout->num_clusters(); ++cl) {
    const Counter* c = registry.FindCounter(
        LabeledName("ftms_sched_degraded_reads_total",
                    {{"scheme", abbrev}, {"cluster", std::to_string(cl)}}));
    ASSERT_NE(c, nullptr);
    if (cl == affected) {
      degraded_affected = c->value();
    } else {
      EXPECT_EQ(c->value(), 0) << "degraded reads leaked to cluster " << cl;
    }
  }
  EXPECT_GT(degraded_affected, 0);

  // Reconstructions happened and the scheduler's own ledger agrees.
  int64_t reconstructed = 0;
  for (int cl = 0; cl < rig.layout->num_clusters(); ++cl) {
    const Counter* c = registry.FindCounter(
        LabeledName("ftms_sched_reconstructions_total",
                    {{"scheme", abbrev}, {"cluster", std::to_string(cl)}}));
    ASSERT_NE(c, nullptr);
    reconstructed += c->value();
  }
  EXPECT_EQ(reconstructed, rig.sched->metrics().reconstructed);
  EXPECT_GT(reconstructed, 0);

  // Rebuild metrics: one completed rebuild, full track count, progress 1.
  const Counter* completed = registry.FindCounter(
      LabeledName("ftms_rebuilds_completed_total", {{"scheme", abbrev}}));
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), 1);
  const Counter* tracks = registry.FindCounter(
      LabeledName("ftms_rebuild_tracks_rebuilt_total", {{"scheme", abbrev}}));
  ASSERT_NE(tracks, nullptr);
  EXPECT_EQ(tracks->value(), rig.disks->params().TracksPerDisk());
  const Gauge* progress = registry.FindGauge(
      LabeledName("ftms_rebuild_progress_ratio", {{"scheme", abbrev}}));
  ASSERT_NE(progress, nullptr);
  EXPECT_DOUBLE_EQ(progress->value(), 1.0);

  // The timeline: cycle spans, the failure instant, the rebuild span.
  const auto events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());
  int cycle_spans = 0;
  bool saw_failure = false, saw_rebuild_span = false, saw_transition = false;
  for (const auto& e : events) {
    const std::string name(e.name);
    if (name == "cycle" && e.phase == 'X') ++cycle_spans;
    if (name == "disk_failed" && e.phase == 'i') saw_failure = true;
    if (name == "degraded_transition") saw_transition = true;
    if (name == "rebuild" && e.phase == 'X') saw_rebuild_span = true;
  }
  EXPECT_EQ(cycle_spans, rig.sched->cycle());
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_transition);
  EXPECT_TRUE(saw_rebuild_span);

  // Monotone span nesting per track: sorted by start, every span either
  // starts at-or-after the previous span's end or nests inside it.
  std::map<int32_t, std::vector<std::pair<int64_t, int64_t>>> spans;
  for (const auto& e : events) {
    if (e.phase == 'X') {
      spans[e.tid].emplace_back(e.ts_us, e.ts_us + e.dur_us);
    }
  }
  EXPECT_GE(spans.size(), 2u);  // scheduler track + rebuild track
  for (auto& [tid, list] : spans) {
    std::sort(list.begin(), list.end());
    std::vector<int64_t> open;  // stack of enclosing span ends
    for (const auto& [start, end] : list) {
      while (!open.empty() && start >= open.back()) open.pop_back();
      EXPECT_TRUE(open.empty() || end <= open.back())
          << "partial overlap on track " << tid;
      open.push_back(end);
    }
  }

  // The Chrome export is non-trivial and structurally sound.
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"disk_failed\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_P(ObservabilityTest, MetricsAreThreadCountInvariant) {
  MetricsRegistry serial, parallel;
  RunFailureRebuildScenario(GetParam(), &serial, nullptr, /*threads=*/1);
  RunFailureRebuildScenario(GetParam(), &parallel, nullptr, /*threads=*/8);
  EXPECT_EQ(DeterministicText(serial), DeterministicText(parallel));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ObservabilityTest,
                         ::testing::Values(Scheme::kStreamingRaid,
                                           Scheme::kStaggeredGroup,
                                           Scheme::kNonClustered),
                         [](const auto& info) {
                           return std::string(SchemeAbbrev(info.param));
                         });

TEST(PrometheusExpositionTest, HistogramSummaryQuantileGauges) {
  // Pins the exposition format for histogram quantile summaries: p50 /
  // p90 / p99 are emitted as separate gauge families AFTER the main
  // family list, each with its own # TYPE line — never as extra samples
  // inside the histogram family (a duplicate-TYPE violation scrapers
  // reject). One value per bucket of [0, 10) x 10 makes the quantiles
  // exact: p50 = 5, p90 = 9, p99 = 9.9.
  MetricsRegistry registry;
  HistogramCell* h = registry.GetHistogram("ftms_obs_lat", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h->Add(i + 0.5);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE ftms_obs_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("ftms_obs_lat_bucket{le=\"+Inf\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("ftms_obs_lat_count 10"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ftms_obs_lat_p50 gauge\nftms_obs_lat_p50 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ftms_obs_lat_p90 gauge\nftms_obs_lat_p90 9\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE ftms_obs_lat_p99 gauge\nftms_obs_lat_p99 9.9\n"),
      std::string::npos);
  // The quantile gauges follow the histogram family block.
  EXPECT_GT(text.find("ftms_obs_lat_p50"), text.find("ftms_obs_lat_count"));
}

TEST(PrometheusExpositionTest, HelpLinesPrecedeTypeLines) {
  // `# HELP` is emitted for every cell registered with a help string,
  // immediately before the family's `# TYPE` line, with the family name
  // (labels stripped) on the HELP line.
  MetricsRegistry registry;
  registry.GetCounter("ftms_obs_help_total", "Things counted for the test")
      ->Add(3);
  registry
      .GetGauge(LabeledName("ftms_obs_help_g", {{"scheme", "SR"}}),
                "A labeled gauge keeps help on the bare family name")
      ->Set(1.5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(
      text.find("# HELP ftms_obs_help_total Things counted for the test\n"
                "# TYPE ftms_obs_help_total counter"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "# HELP ftms_obs_help_g A labeled gauge keeps help on the bare "
          "family name\n# TYPE ftms_obs_help_g gauge"),
      std::string::npos);
}

TEST(PrometheusExpositionTest, ScenarioRegistryCarriesHelpText) {
  // The real registration sites thread help strings through: a full
  // failure + rebuild scenario's registry documents its key families.
  MetricsRegistry registry;
  RunFailureRebuildScenario(Scheme::kStreamingRaid, &registry, nullptr, 1);
  const std::string text = registry.PrometheusText();
  for (const char* family :
       {"ftms_rebuild_tracks_rebuilt_total", "ftms_rebuilds_completed_total",
        "ftms_rebuild_progress_ratio", "ftms_sched_hiccups_total"}) {
    EXPECT_NE(text.find(std::string("# HELP ") + family + " "),
              std::string::npos)
        << "missing # HELP for " << family;
  }
}

TEST(PrometheusExpositionTest, ScrapeContentTypeIsExpositionV0_0_4) {
  // The telemetry exporter must label /metrics with the exposition
  // format version; Prometheus rejects bare text/plain in strict mode.
  EXPECT_STREQ(kPrometheusContentType,
               "text/plain; version=0.0.4; charset=utf-8");
}

TEST(PrometheusExpositionTest, LabeledHistogramQuantilesKeepLabels) {
  MetricsRegistry registry;
  registry
      .GetHistogram(LabeledName("ftms_obs_l", {{"scheme", "SR"}}), 0.0, 4.0,
                    4)
      ->Add(1.5);
  const std::string text = registry.PrometheusText();
  // The suffix lands on the family name, before the label set.
  EXPECT_NE(text.find("# TYPE ftms_obs_l_p50 gauge"), std::string::npos);
  EXPECT_NE(text.find("ftms_obs_l_p50{scheme=\"SR\"} "), std::string::npos);
}

TEST(ObservabilityOffTest, UninstrumentedSchedulerTouchesNoGlobalState) {
  // With no config override and the global sinks disabled, a full run
  // registers nothing anywhere.
  ASSERT_EQ(MetricsRegistry::GlobalIfEnabled(), nullptr);
  ASSERT_EQ(Tracer::GlobalIfEnabled(), nullptr);
  const size_t global_before = MetricsRegistry::Global().size();
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  rig.sched->AddStream(TestObject(0, 16)).value();
  for (int i = 0; i < 4; ++i) rig.sched->RunCycle();
  EXPECT_EQ(MetricsRegistry::Global().size(), global_before);
  EXPECT_EQ(rig.sched->metrics_registry(), nullptr);
  EXPECT_EQ(rig.sched->tracer(), nullptr);
  EXPECT_EQ(rig.sched->trace_tid(), -1);
}

}  // namespace
}  // namespace ftms
