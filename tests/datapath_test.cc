#include "verify/datapath.h"

#include <gtest/gtest.h>

#include <tuple>

namespace ftms {
namespace {

constexpr size_t kBlockBytes = 512;

TEST(DataPathTest, SynthesisIsDeterministicAndDistinct) {
  const Block a = SynthesizeDataBlock(1, 7, kBlockBytes);
  EXPECT_EQ(a, SynthesizeDataBlock(1, 7, kBlockBytes));
  EXPECT_NE(a, SynthesizeDataBlock(1, 8, kBlockBytes));
  EXPECT_NE(a, SynthesizeDataBlock(2, 7, kBlockBytes));
  EXPECT_EQ(a.size(), kBlockBytes);
}

TEST(DataPathTest, HealthyReadIsDirect) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 3, 100, {}, kBlockBytes).value();
  EXPECT_FALSE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 3, kBlockBytes));
}

TEST(DataPathTest, DegradedReadReconstructsExactBytes) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  // Disk 2 holds track 2 of object 0's group 0.
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 2, 100, {2}, kBlockBytes).value();
  EXPECT_TRUE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 2, kBlockBytes));
}

TEST(DataPathTest, DoubleFailureInGroupIsUnavailable) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 2, 100, {1, 2}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
  // Data + parity disk of the same cluster: also catastrophic.
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 2, 100, {2, 4}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(DataPathTest, ShortFinalGroupReconstructs) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  // Object of 6 tracks: final group holds only tracks 4, 5.
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 5, 6, {6}, kBlockBytes).value();
  EXPECT_TRUE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 5, kBlockBytes));
}

// The batched path must be equivalent to N single-track calls: same
// bytes, same reconstructed flags, for a mix of degraded and healthy
// tracks in one batch (the rebuilt disk holds only some of them).
TEST(DataPathTest, BatchedReconstructionMatchesSingleTrackReads) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const int64_t object_tracks = 26;  // includes a short final group
  const DiskSet failed({2});
  std::vector<int64_t> tracks;
  for (int64_t t = 0; t < object_tracks; ++t) tracks.push_back(t);
  DegradedReadScratch scratch;
  std::vector<TrackRead> batched;
  ASSERT_TRUE(ReconstructTracksInto(*layout, 0, tracks, object_tracks,
                                    failed, kBlockBytes, &scratch,
                                    &batched)
                  .ok());
  ASSERT_EQ(batched.size(), tracks.size());
  int64_t reconstructed = 0;
  for (size_t i = 0; i < tracks.size(); ++i) {
    const TrackRead single =
        ReadTrackDegraded(*layout, 0, tracks[i], object_tracks, failed,
                          kBlockBytes)
            .value();
    EXPECT_EQ(batched[i].reconstructed, single.reconstructed)
        << "track " << tracks[i];
    EXPECT_EQ(batched[i].data, single.data) << "track " << tracks[i];
    if (batched[i].reconstructed) ++reconstructed;
  }
  EXPECT_GT(reconstructed, 0);  // disk 2 holds data of this object
}

TEST(DataPathTest, BatchedReconstructionRejectsDoubleFailure) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const std::vector<int64_t> tracks = {2};
  DegradedReadScratch scratch;
  std::vector<TrackRead> out;
  EXPECT_EQ(ReconstructTracksInto(*layout, 0, tracks, 100, {1, 2},
                                  kBlockBytes, &scratch, &out)
                .code(),
            StatusCode::kUnavailable);
}

// Dual-parity (P+Q) layouts repair any TWO erasures per group. Cluster 0
// of the C=5 layout: data on disks 0-2, P on 3, Q on 4.
TEST(DataPathTest, DualParityTwoErasuresAreByteExact) {
  auto layout = CreateLayout(Scheme::kStreamingRaid2, 10, 5).value();
  const std::vector<DiskSet> patterns = {
      DiskSet({0, 1}),  // data + data: the full P+Q solve
      DiskSet({1, 3}),  // data + P: Q-only reconstruction
      DiskSet({2, 4}),  // data + Q: falls back to the XOR path
      DiskSet({3, 4}),  // P + Q: data reads stay direct
  };
  for (const DiskSet& failed : patterns) {
    for (int64_t track = 0; track < 3; ++track) {
      const TrackRead read =
          ReadTrackDegraded(*layout, 0, track, 100, failed, kBlockBytes)
              .value();
      EXPECT_EQ(read.data, SynthesizeDataBlock(0, track, kBlockBytes))
          << "track " << track;
    }
  }
}

TEST(DataPathTest, DualParityThreeErasuresAreUnavailable) {
  auto layout = CreateLayout(Scheme::kStreamingRaid2, 10, 5).value();
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 0, 100, {0, 1, 2}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 0, 100, {0, 3, 4}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(DataPathTest, DualParityBatchedMatchesSingleTrackReads) {
  auto layout = CreateLayout(Scheme::kStreamingRaid2, 10, 5).value();
  const int64_t object_tracks = 20;  // short final group (3-track groups)
  const DiskSet failed({0, 1});
  std::vector<int64_t> tracks;
  for (int64_t t = 0; t < object_tracks; ++t) tracks.push_back(t);
  DegradedReadScratch scratch;
  std::vector<TrackRead> batched;
  ASSERT_TRUE(ReconstructTracksInto(*layout, 0, tracks, object_tracks,
                                    failed, kBlockBytes, &scratch,
                                    &batched)
                  .ok());
  ASSERT_EQ(batched.size(), tracks.size());
  int64_t reconstructed = 0;
  for (size_t i = 0; i < tracks.size(); ++i) {
    const TrackRead single =
        ReadTrackDegraded(*layout, 0, tracks[i], object_tracks, failed,
                          kBlockBytes)
            .value();
    EXPECT_EQ(batched[i].data, single.data) << "track " << tracks[i];
    EXPECT_EQ(batched[i].data,
              SynthesizeDataBlock(0, tracks[i], kBlockBytes))
        << "track " << tracks[i];
    if (batched[i].reconstructed) ++reconstructed;
  }
  EXPECT_GT(reconstructed, 0);
}

// The headline property: for every scheme, group size and single failed
// disk, EVERY track of an object reads back bit-exact.
class DataPathProperty
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(DataPathProperty, SingleFailureIsAlwaysByteExact) {
  const auto [scheme, c] = GetParam();
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 3;
  auto layout = CreateLayout(scheme, disks, c).value();
  const int64_t tracks = 6LL * (c - 1) + 1;  // includes a short group
  for (int failed = 0; failed < disks; ++failed) {
    StatusOr<int64_t> reconstructed = VerifyObjectReadback(
        *layout, /*object_id=*/1, tracks, {failed}, /*block_bytes=*/64);
    ASSERT_TRUE(reconstructed.ok())
        << SchemeName(scheme) << " C=" << c << " failed disk " << failed
        << ": " << reconstructed.status().ToString();
    // If the failed disk carries any of this object's data, something
    // must have been reconstructed; parity-only holders reconstruct 0.
    EXPECT_GE(*reconstructed, 0);
  }
}

TEST_P(DataPathProperty, HealthyReadbackNeverReconstructs) {
  const auto [scheme, c] = GetParam();
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 3;
  auto layout = CreateLayout(scheme, disks, c).value();
  EXPECT_EQ(VerifyObjectReadback(*layout, 2, 4LL * (c - 1), {}, 64).value(),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndGroups, DataPathProperty,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Values(2, 3, 5, 7)));

// Dual parity needs C >= 3 (two parity disks leave C-2 data slots).
INSTANTIATE_TEST_SUITE_P(
    DualParityGroups, DataPathProperty,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid2),
                       ::testing::Values(3, 5, 7)));

}  // namespace
}  // namespace ftms
