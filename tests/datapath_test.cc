#include "verify/datapath.h"

#include <gtest/gtest.h>

#include <tuple>

namespace ftms {
namespace {

constexpr size_t kBlockBytes = 512;

TEST(DataPathTest, SynthesisIsDeterministicAndDistinct) {
  const Block a = SynthesizeDataBlock(1, 7, kBlockBytes);
  EXPECT_EQ(a, SynthesizeDataBlock(1, 7, kBlockBytes));
  EXPECT_NE(a, SynthesizeDataBlock(1, 8, kBlockBytes));
  EXPECT_NE(a, SynthesizeDataBlock(2, 7, kBlockBytes));
  EXPECT_EQ(a.size(), kBlockBytes);
}

TEST(DataPathTest, HealthyReadIsDirect) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 3, 100, {}, kBlockBytes).value();
  EXPECT_FALSE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 3, kBlockBytes));
}

TEST(DataPathTest, DegradedReadReconstructsExactBytes) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  // Disk 2 holds track 2 of object 0's group 0.
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 2, 100, {2}, kBlockBytes).value();
  EXPECT_TRUE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 2, kBlockBytes));
}

TEST(DataPathTest, DoubleFailureInGroupIsUnavailable) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 2, 100, {1, 2}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
  // Data + parity disk of the same cluster: also catastrophic.
  EXPECT_EQ(ReadTrackDegraded(*layout, 0, 2, 100, {2, 4}, kBlockBytes)
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(DataPathTest, ShortFinalGroupReconstructs) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  // Object of 6 tracks: final group holds only tracks 4, 5.
  const TrackRead read =
      ReadTrackDegraded(*layout, 0, 5, 6, {6}, kBlockBytes).value();
  EXPECT_TRUE(read.reconstructed);
  EXPECT_EQ(read.data, SynthesizeDataBlock(0, 5, kBlockBytes));
}

// The headline property: for every scheme, group size and single failed
// disk, EVERY track of an object reads back bit-exact.
class DataPathProperty
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(DataPathProperty, SingleFailureIsAlwaysByteExact) {
  const auto [scheme, c] = GetParam();
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 3;
  auto layout = CreateLayout(scheme, disks, c).value();
  const int64_t tracks = 6LL * (c - 1) + 1;  // includes a short group
  for (int failed = 0; failed < disks; ++failed) {
    StatusOr<int64_t> reconstructed = VerifyObjectReadback(
        *layout, /*object_id=*/1, tracks, {failed}, /*block_bytes=*/64);
    ASSERT_TRUE(reconstructed.ok())
        << SchemeName(scheme) << " C=" << c << " failed disk " << failed
        << ": " << reconstructed.status().ToString();
    // If the failed disk carries any of this object's data, something
    // must have been reconstructed; parity-only holders reconstruct 0.
    EXPECT_GE(*reconstructed, 0);
  }
}

TEST_P(DataPathProperty, HealthyReadbackNeverReconstructs) {
  const auto [scheme, c] = GetParam();
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 3;
  auto layout = CreateLayout(scheme, disks, c).value();
  EXPECT_EQ(VerifyObjectReadback(*layout, 2, 4LL * (c - 1), {}, 64).value(),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndGroups, DataPathProperty,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Values(2, 3, 5, 7)));

}  // namespace
}  // namespace ftms
