#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

namespace ftms {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool pool_neg(-3);
  EXPECT_EQ(pool_neg.size(), 1);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<int> hits(kN, 0);
  ParallelFor(&pool, 0, kN, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), kN);
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 7, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 7);
  // More threads than elements: every index still covered once.
  std::vector<int> hits(3, 0);
  ParallelFor(&pool, 0, 3, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, 0, 100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  EXPECT_GE(ThreadPool::Shared().size(), 1);
}

}  // namespace
}  // namespace ftms
