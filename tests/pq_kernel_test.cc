#include "parity/pq_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "parity/gf256.h"
#include "parity/parity.h"
#include "util/random.h"

namespace ftms {
namespace {

// The determinism contract, same as xor_kernel_test: GF(2^8) arithmetic
// is exact, so EVERY compiled kernel the CPU can run must produce
// byte-identical P and Q for every size, alignment, source count and
// coefficient set — dispatch may only change speed. The reference is
// computed independently through gf256::MulSlow (bitwise, no tables),
// so a table-construction bug shared by all kernels still fails.
void NaivePq(std::vector<uint8_t>* p, std::vector<uint8_t>* q,
             const std::vector<const uint8_t*>& srcs,
             const std::vector<uint8_t>& coeffs, size_t bytes) {
  for (size_t s = 0; s < srcs.size(); ++s) {
    for (size_t i = 0; i < bytes; ++i) {
      (*p)[i] ^= srcs[s][i];
      (*q)[i] ^= gf256::MulSlow(coeffs[s], srcs[s][i]);
    }
  }
}

TEST(PqKernelTest, ScalarIsAlwaysCompiledAndRunnable) {
  ASSERT_FALSE(CompiledPqKernels().empty());
  EXPECT_STREQ(CompiledPqKernels().front().name, "scalar");
  EXPECT_TRUE(CompiledPqKernels().front().supported());
}

TEST(PqKernelTest, EveryRunnableKernelMatchesNaiveReference) {
  // Sizes hit every code path: empty, sub-vector, tails one off each
  // vector width, the unrolled loops, and a track-sized odd block.
  const size_t kSizes[] = {0, 1, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                           127, 128, 129, 1024, 4096 + 3, 50 * 1024 + 3};
  // Kernels promise no alignment requirements: misalign everything.
  const size_t kOffsets[] = {0, 1, 3};
  Rng rng(0xC0FFEEu);
  for (size_t bytes : kSizes) {
    for (size_t offset : kOffsets) {
      for (int nsrc = 1; nsrc <= kMaxPqSources; ++nsrc) {
        std::vector<std::vector<uint8_t>> backing(
            static_cast<size_t>(nsrc));
        std::vector<const uint8_t*> srcs;
        std::vector<uint8_t> coeffs;
        for (int s = 0; s < nsrc; ++s) {
          auto& buf = backing[static_cast<size_t>(s)];
          buf.resize(bytes + offset);
          for (uint8_t& b : buf) {
            b = static_cast<uint8_t>(rng.NextUint64());
          }
          srcs.push_back(buf.data() + offset);
          // Mix of structured (g^s) and arbitrary coefficients,
          // including 0 and 1 edge cases.
          coeffs.push_back(
              s == 0 ? 0
                     : s == 1 ? 1
                              : static_cast<uint8_t>(rng.NextUint64()));
        }
        std::vector<uint8_t> seed_p(bytes), seed_q(bytes);
        for (uint8_t& b : seed_p) {
          b = static_cast<uint8_t>(rng.NextUint64());
        }
        for (uint8_t& b : seed_q) {
          b = static_cast<uint8_t>(rng.NextUint64());
        }
        std::vector<uint8_t> want_p = seed_p, want_q = seed_q;
        NaivePq(&want_p, &want_q, srcs, coeffs, bytes);
        for (const PqKernel& kernel : CompiledPqKernels()) {
          if (!kernel.supported()) continue;
          std::vector<uint8_t> p(bytes + offset), q(bytes + offset);
          std::memcpy(p.data() + offset, seed_p.data(), bytes);
          std::memcpy(q.data() + offset, seed_q.data(), bytes);
          kernel.pq(p.data() + offset, q.data() + offset, srcs.data(),
                    coeffs.data(), nsrc, bytes);
          ASSERT_EQ(0, std::memcmp(p.data() + offset, want_p.data(),
                                   bytes))
              << kernel.name << " P diverges at bytes=" << bytes
              << " offset=" << offset << " nsrc=" << nsrc;
          ASSERT_EQ(0, std::memcmp(q.data() + offset, want_q.data(),
                                   bytes))
              << kernel.name << " Q diverges at bytes=" << bytes
              << " offset=" << offset << " nsrc=" << nsrc;
        }
      }
    }
  }
}

TEST(PqKernelTest, EveryRunnableKernelMulXorMatchesReference) {
  const size_t kSizes[] = {0, 1, 15, 16, 17, 63, 64, 65, 1000,
                           50 * 1024 + 3};
  Rng rng(0xFACADEu);
  for (size_t bytes : kSizes) {
    for (int c : {0, 1, 2, 0x1d, 0xa7, 255}) {
      std::vector<uint8_t> src(bytes), seed(bytes);
      for (uint8_t& b : src) b = static_cast<uint8_t>(rng.NextUint64());
      for (uint8_t& b : seed) b = static_cast<uint8_t>(rng.NextUint64());
      std::vector<uint8_t> want = seed;
      for (size_t i = 0; i < bytes; ++i) {
        want[i] ^= gf256::MulSlow(static_cast<uint8_t>(c), src[i]);
      }
      for (const PqKernel& kernel : CompiledPqKernels()) {
        if (!kernel.supported()) continue;
        std::vector<uint8_t> dst = seed;
        kernel.mul_xor(dst.data(), src.data(), static_cast<uint8_t>(c),
                       bytes);
        ASSERT_EQ(dst, want) << kernel.name << " c=" << c
                             << " bytes=" << bytes;
      }
    }
  }
}

TEST(PqKernelTest, PqGenerateNBatchesBeyondMaxSources) {
  // 21 sources forces three kernel batches (8 + 8 + 5) with the g^i run
  // continuing across batch boundaries.
  constexpr int kSources = 2 * kMaxPqSources + 5;
  constexpr size_t kBytes = 1000;
  Rng rng(11);
  std::vector<std::vector<uint8_t>> backing(kSources);
  std::vector<const uint8_t*> srcs;
  std::vector<uint8_t> coeffs;
  for (int s = 0; s < kSources; ++s) {
    auto& buf = backing[static_cast<size_t>(s)];
    buf.resize(kBytes);
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng.NextUint64());
    srcs.push_back(buf.data());
    coeffs.push_back(gf256::Exp(s));
  }
  std::vector<uint8_t> p(kBytes, 0), q(kBytes, 0);
  std::vector<uint8_t> want_p = p, want_q = q;
  NaivePq(&want_p, &want_q, srcs, coeffs, kBytes);
  PqGenerateN(p.data(), q.data(), srcs.data(), kSources, kBytes);
  EXPECT_EQ(p, want_p);
  EXPECT_EQ(q, want_q);
  // nsrc = 0 is a no-op.
  PqGenerateN(p.data(), q.data(), srcs.data(), 0, kBytes);
  EXPECT_EQ(p, want_p);
  EXPECT_EQ(q, want_q);
}

TEST(PqKernelTest, SelectionReportCoversEveryCompiledKernel) {
  const auto report = PqKernelSelectionReport();
  ASSERT_EQ(report.size(), CompiledPqKernels().size());
  int selected = 0;
  for (const PqKernelMeasurement& m : report) {
    if (m.selected) {
      ++selected;
      EXPECT_TRUE(m.supported);
      EXPECT_STREQ(m.name, ActivePqKernelName());
    }
    if (m.supported) EXPECT_GT(m.gb_per_s, 0.0);
  }
  EXPECT_EQ(selected, 1);
}

TEST(PqKernelTest, FindPqKernelKnowsScalarAndRejectsUnknown) {
  ASSERT_TRUE(FindPqKernel("scalar").ok());
  EXPECT_STREQ(FindPqKernel("scalar").value()->name, "scalar");
  const auto missing = FindPqKernel("mmx");
  ASSERT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("scalar"), std::string::npos);
}

TEST(PqKernelTest, ParsePqKernelSpecAutoAndEmptyMeanDispatch) {
  EXPECT_EQ(ParsePqKernelSpec("").value(), nullptr);
  EXPECT_EQ(ParsePqKernelSpec("auto").value(), nullptr);
  EXPECT_STREQ(ParsePqKernelSpec("scalar").value()->name, "scalar");
  EXPECT_EQ(ParsePqKernelSpec("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PqKernelTest, PinOverridesActiveKernel) {
  const PqKernel* scalar = FindPqKernel("scalar").value();
  const char* before = ActivePqKernelName();
  PinPqKernel(scalar);
  EXPECT_STREQ(ActivePqKernelName(), "scalar");
  PinPqKernel(nullptr);
  EXPECT_STREQ(ActivePqKernelName(), before);
}

// ---------------------------------------------------------------------
// Block-level P+Q codec (parity.h): every two-erasure case must restore
// the exact original bytes, under every runnable kernel.

class PqCodecTest : public ::testing::TestWithParam<const PqKernel*> {};

std::vector<Block> RandomGroup(int k, size_t bytes, Rng* rng) {
  std::vector<Block> data(static_cast<size_t>(k));
  for (Block& b : data) {
    b.resize(bytes);
    for (uint8_t& v : b) v = static_cast<uint8_t>(rng->NextUint64());
  }
  return data;
}

TEST(PqCodecTest, ReconstructsEveryErasurePairUnderEveryKernel) {
  constexpr size_t kBytes = 257;  // odd: exercises vector tails
  Rng rng(0xD15C5u);
  for (const PqKernel& kernel : CompiledPqKernels()) {
    if (!kernel.supported()) continue;
    PinPqKernel(&kernel);
    for (int k : {1, 2, 3, 4, 7}) {
      const std::vector<Block> original = RandomGroup(k, kBytes, &rng);
      Block p0, q0;
      ASSERT_TRUE(ComputePq(original, &p0, &q0).ok());
      ASSERT_TRUE(VerifyPqGroup(original, p0, q0).value());
      // Every distinct unit pair (and every single unit, and none).
      std::vector<std::vector<int>> cases = {{}};
      for (int u = 0; u < k + 2; ++u) {
        cases.push_back({u});
        for (int v = u + 1; v < k + 2; ++v) cases.push_back({u, v});
      }
      for (const std::vector<int>& missing : cases) {
        std::vector<Block> data = original;
        Block p = p0, q = q0;
        for (int m : missing) {
          // Clobber the "lost" unit to prove repair writes real bytes.
          Block& victim = m < k ? data[static_cast<size_t>(m)]
                                : (m == k ? p : q);
          std::fill(victim.begin(), victim.end(), 0xEE);
        }
        ASSERT_TRUE(ReconstructPq(data, &p, &q, missing).ok())
            << kernel.name << " k=" << k;
        for (int u = 0; u < k; ++u) {
          ASSERT_EQ(data[static_cast<size_t>(u)],
                    original[static_cast<size_t>(u)])
              << kernel.name << " k=" << k << " unit=" << u;
        }
        ASSERT_EQ(p, p0) << kernel.name << " k=" << k;
        ASSERT_EQ(q, q0) << kernel.name << " k=" << k;
      }
    }
  }
  PinPqKernel(nullptr);
}

TEST(PqCodecTest, RejectsBadErasureSets) {
  Rng rng(99);
  std::vector<Block> data = RandomGroup(3, 64, &rng);
  Block p, q;
  ASSERT_TRUE(ComputePq(data, &p, &q).ok());
  const int three[] = {0, 1, 2};
  EXPECT_EQ(ReconstructPq(data, &p, &q, three).code(),
            StatusCode::kInvalidArgument);
  const int dup[] = {1, 1};
  EXPECT_EQ(ReconstructPq(data, &p, &q, dup).code(),
            StatusCode::kInvalidArgument);
  const int oob[] = {0, 5};
  EXPECT_EQ(ReconstructPq(data, &p, &q, oob).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ftms
