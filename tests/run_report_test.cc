#include "qos/run_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ftms {
namespace {

// A recorded SR failure/rebuild drill (FTMS_QOS_OUT of `ftms qos sr 4`).
constexpr char kDrillJournal[] =
    R"({"kind":"disk_failed","scheme":"SR","sim_us":6400000,"cycle":8,"disk":0,"cluster":0,"stream":-1,"value":1}
{"kind":"degraded_transition_start","scheme":"SR","sim_us":6400000,"cycle":8,"disk":-1,"cluster":0,"stream":-1,"value":4}
{"kind":"degraded_transition_end","scheme":"SR","sim_us":10400000,"cycle":12,"disk":-1,"cluster":0,"stream":-1,"value":0}
{"kind":"rebuild_start","scheme":"SR","sim_us":10400000,"cycle":13,"disk":0,"cluster":0,"stream":-1,"value":50}
{"kind":"rebuild_progress","scheme":"SR","sim_us":11200000,"cycle":14,"disk":0,"cluster":0,"stream":-1,"value":76}
{"kind":"disk_repaired","scheme":"SR","sim_us":12000000,"cycle":15,"disk":0,"cluster":0,"stream":-1,"value":0}
{"kind":"rebuild_done","scheme":"SR","sim_us":12000000,"cycle":15,"disk":0,"cluster":0,"stream":-1,"value":2}
)";

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path =
      ::testing::TempDir() + "/run_report_test_" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

TEST(RunReportTest, LoadsDrillJournal) {
  const std::string path = WriteTempFile("drill.jsonl", kDrillJournal);
  const auto report = LoadRunReport(path, "", "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->event_count, 7);
  EXPECT_EQ(report->horizon_us, 12000000);
  EXPECT_EQ(report->kind_counts.size(), 7u);
  ASSERT_EQ(report->rebuild.size(), 3u);
  EXPECT_EQ(report->rebuild[0].kind, "rebuild_start");
  EXPECT_EQ(report->rebuild[0].value, 50);
  EXPECT_EQ(report->rebuild[2].kind, "rebuild_done");
  EXPECT_TRUE(report->hiccups.empty());
  EXPECT_TRUE(report->slo_breaches.empty());
  EXPECT_FALSE(report->has_metrics);
  EXPECT_FALSE(report->has_timeseries);
}

// The golden output contract: `ftms report` on a recorded drill renders
// exactly this markdown. Any renderer change must update this test —
// the report is a published artifact, not debug output.
TEST(RunReportTest, GoldenMarkdownForDrillJournal) {
  const std::string path = WriteTempFile("golden.jsonl", kDrillJournal);
  const auto report = LoadRunReport(path, "", "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string expected = std::string("# FTMS run report\n\n") +
      "Journal: `" + path +
      "` \xE2\x80\x94 7 events, horizon 12.000 s simulated.\n"
      "\n"
      "## Journal events\n"
      "\n"
      "| kind | count |\n"
      "|---|---|\n"
      "| degraded_transition_end | 1 |\n"
      "| degraded_transition_start | 1 |\n"
      "| disk_failed | 1 |\n"
      "| disk_repaired | 1 |\n"
      "| rebuild_done | 1 |\n"
      "| rebuild_progress | 1 |\n"
      "| rebuild_start | 1 |\n"
      "\n"
      "## SLO burn\n"
      "\n"
      "No SLO breaches recorded.\n"
      "\n"
      "## Hiccup timeline\n"
      "\n"
      "No hiccups recorded.\n"
      "\n"
      "## Rebuild\n"
      "\n"
      "- t=10.400s rebuild_start tracks_total=50\n"
      "- t=11.200s rebuild_progress percent=76\n"
      "- t=12.000s rebuild_done cycles=2\n";
  EXPECT_EQ(RenderRunReportMarkdown(*report), expected);
}

// A recorded SR-2 dual-failure drill (`ftms qos sr2 4 16`): two disks of
// the same cluster fail one cycle apart — survivable only under dual
// parity — then rebuild back-to-back.
constexpr char kDualFailureJournal[] =
    R"({"kind":"disk_failed","scheme":"SR2","sim_us":3200000,"cycle":12,"disk":0,"cluster":0,"stream":-1,"value":1}
{"kind":"degraded_transition_start","scheme":"SR2","sim_us":3200000,"cycle":12,"disk":-1,"cluster":0,"stream":-1,"value":4}
{"kind":"disk_failed","scheme":"SR2","sim_us":3466666,"cycle":13,"disk":1,"cluster":0,"stream":-1,"value":1}
{"kind":"degraded_transition_start","scheme":"SR2","sim_us":3466666,"cycle":13,"disk":-1,"cluster":0,"stream":-1,"value":4}
{"kind":"degraded_transition_end","scheme":"SR2","sim_us":4533333,"cycle":16,"disk":-1,"cluster":0,"stream":-1,"value":0}
{"kind":"degraded_transition_end","scheme":"SR2","sim_us":4800000,"cycle":17,"disk":-1,"cluster":0,"stream":-1,"value":0}
{"kind":"rebuild_start","scheme":"SR2","sim_us":4800000,"cycle":18,"disk":0,"cluster":0,"stream":-1,"value":50}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":5333333,"cycle":20,"disk":0,"cluster":0,"stream":-1,"value":48}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":5600000,"cycle":21,"disk":0,"cluster":0,"stream":-1,"value":72}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":5866666,"cycle":22,"disk":0,"cluster":0,"stream":-1,"value":96}
{"kind":"disk_repaired","scheme":"SR2","sim_us":6133333,"cycle":23,"disk":0,"cluster":0,"stream":-1,"value":0}
{"kind":"rebuild_done","scheme":"SR2","sim_us":6133333,"cycle":23,"disk":0,"cluster":0,"stream":-1,"value":5}
{"kind":"rebuild_start","scheme":"SR2","sim_us":6133333,"cycle":23,"disk":1,"cluster":0,"stream":-1,"value":50}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":6666666,"cycle":25,"disk":1,"cluster":0,"stream":-1,"value":48}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":6933333,"cycle":26,"disk":1,"cluster":0,"stream":-1,"value":72}
{"kind":"rebuild_progress","scheme":"SR2","sim_us":7200000,"cycle":27,"disk":1,"cluster":0,"stream":-1,"value":96}
{"kind":"disk_repaired","scheme":"SR2","sim_us":7466666,"cycle":28,"disk":1,"cluster":0,"stream":-1,"value":0}
{"kind":"rebuild_done","scheme":"SR2","sim_us":7466666,"cycle":28,"disk":1,"cluster":0,"stream":-1,"value":5}
)";

TEST(RunReportTest, GoldenMarkdownForDualFailureDrill) {
  const std::string path =
      WriteTempFile("golden_sr2.jsonl", kDualFailureJournal);
  const auto report = LoadRunReport(path, "", "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->event_count, 18);
  ASSERT_EQ(report->rebuild.size(), 10u);

  const std::string expected = std::string("# FTMS run report\n\n") +
      "Journal: `" + path +
      "` \xE2\x80\x94 18 events, horizon 7.467 s simulated.\n"
      "\n"
      "## Journal events\n"
      "\n"
      "| kind | count |\n"
      "|---|---|\n"
      "| degraded_transition_end | 2 |\n"
      "| degraded_transition_start | 2 |\n"
      "| disk_failed | 2 |\n"
      "| disk_repaired | 2 |\n"
      "| rebuild_done | 2 |\n"
      "| rebuild_progress | 6 |\n"
      "| rebuild_start | 2 |\n"
      "\n"
      "## SLO burn\n"
      "\n"
      "No SLO breaches recorded.\n"
      "\n"
      "## Hiccup timeline\n"
      "\n"
      "No hiccups recorded.\n"
      "\n"
      "## Rebuild\n"
      "\n"
      "- t=4.800s rebuild_start tracks_total=50\n"
      "- t=5.333s rebuild_progress percent=48\n"
      "- t=5.600s rebuild_progress percent=72\n"
      "- t=5.867s rebuild_progress percent=96\n"
      "- t=6.133s rebuild_done cycles=5\n"
      "- t=6.133s rebuild_start tracks_total=50\n"
      "- t=6.667s rebuild_progress percent=48\n"
      "- t=6.933s rebuild_progress percent=72\n"
      "- t=7.200s rebuild_progress percent=96\n"
      "- t=7.467s rebuild_done cycles=5\n";
  EXPECT_EQ(RenderRunReportMarkdown(*report), expected);
}

TEST(RunReportTest, JsonRenderIsStructured) {
  const std::string path = WriteTempFile("json.jsonl", kDrillJournal);
  const auto report = LoadRunReport(path, "", "");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = RenderRunReportJson(*report);
  EXPECT_NE(json.find("\"event_count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"horizon_us\": 12000000"), std::string::npos);
  EXPECT_NE(json.find("\"rebuild_done\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"rebuild_start\""), std::string::npos);
  // No optional inputs were given, so no optional blocks appear.
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(json.find("\"profile\""), std::string::npos);
  EXPECT_EQ(json.find("\"timeseries\""), std::string::npos);
}

TEST(RunReportTest, MissingJournalIsAnError) {
  const auto report =
      LoadRunReport("/nonexistent/run_report_test.jsonl", "", "");
  EXPECT_FALSE(report.ok());
}

TEST(RunReportTest, MalformedJournalLineIsAnError) {
  const std::string path =
      WriteTempFile("bad.jsonl", "{\"kind\":\"hiccups\"}\nnot json\n");
  const auto report = LoadRunReport(path, "", "");
  ASSERT_FALSE(report.ok());
  // The error names the offending line.
  EXPECT_NE(report.status().ToString().find(":2:"), std::string::npos)
      << report.status().ToString();
}

TEST(RunReportTest, JournalEventWithoutKindIsAnError) {
  const std::string path =
      WriteTempFile("nokind.jsonl", "{\"scheme\":\"SR\",\"sim_us\":1}\n");
  const auto report = LoadRunReport(path, "", "");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("kind"), std::string::npos);
}

TEST(RunReportTest, MetricsFileWithoutMetricsBlockIsAnError) {
  const std::string journal = WriteTempFile("j1.jsonl", kDrillJournal);
  const std::string metrics = WriteTempFile("m1.json", "{\"foo\": 1}\n");
  const auto report = LoadRunReport(journal, metrics, "");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("metrics"), std::string::npos);
}

TEST(RunReportTest, TimeSeriesFileWithoutSeriesIsAnError) {
  const std::string journal = WriteTempFile("j2.jsonl", kDrillJournal);
  const std::string ts = WriteTempFile("t1.json", "{\"schema\": 1}\n");
  const auto report = LoadRunReport(journal, "", ts);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("series"), std::string::npos);
}

TEST(RunReportTest, MismatchedColumnsAreAnError) {
  const std::string journal = WriteTempFile("j3.jsonl", kDrillJournal);
  const std::string ts = WriteTempFile(
      "t2.json",
      "{\"series\": {\"x\": {\"stride\": 1, \"t\": [1, 2], \"v\": [0]}}}\n");
  const auto report = LoadRunReport(journal, "", ts);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("mismatched"),
            std::string::npos);
}

TEST(RunReportTest, TimeSeriesCurvesFeedTheRenderer) {
  const std::string journal = WriteTempFile("j4.jsonl", kDrillJournal);
  const std::string ts = WriteTempFile(
      "t3.json",
      "{\"series\": {"
      "\"rebuild.SR.0.progress\": {\"stride\": 1, \"t\": [11200000, "
      "12000000], \"v\": [0.76, 1]}, "
      "\"qos.SR.0.slo_burn_max\": {\"stride\": 1, \"t\": [800000, "
      "1600000], \"v\": [0, 0.125]}}}\n");
  const auto report = LoadRunReport(journal, "", ts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->has_timeseries);
  ASSERT_EQ(report->series.size(), 2u);
  const std::string md = RenderRunReportMarkdown(*report);
  // Burn-rate and rebuild-progress series render as curves in their
  // sections, plus the summary table.
  EXPECT_NE(md.find("qos.SR.0.slo_burn_max"), std::string::npos);
  EXPECT_NE(md.find("rebuild.SR.0.progress"), std::string::npos);
  EXPECT_NE(md.find("## Time series"), std::string::npos);
  EXPECT_NE(md.find("- t=12.000s: 1"), std::string::npos);
}

}  // namespace
}  // namespace ftms
