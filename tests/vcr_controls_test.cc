#include <gtest/gtest.h>

#include "server/server.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// VCR controls (pause / resume / stop): state machine, buffer cleanup
// and admission accounting, across all four schedulers.

class VcrPerScheme : public ::testing::TestWithParam<Scheme> {};

TEST_P(VcrPerScheme, PauseFreezesPositionResumeContinues) {
  const Scheme scheme = GetParam();
  const int disks = scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  SchedRig rig = MakeRig(scheme, 5, disks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(6);
  const int64_t pos = rig.sched->FindStream(id)->position();
  ASSERT_TRUE(rig.sched->PauseStream(id).ok());
  rig.sched->RunCycles(10);
  EXPECT_EQ(rig.sched->FindStream(id)->position(), pos);
  EXPECT_EQ(rig.sched->FindStream(id)->state(), StreamState::kPaused);
  ASSERT_TRUE(rig.sched->ResumeStream(id).ok());
  rig.sched->RunCycles(200);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks() + s->hiccup_count(), 64);
  EXPECT_EQ(s->hiccup_count(), 0) << SchemeName(scheme);
}

TEST_P(VcrPerScheme, StopReleasesAllBuffers) {
  const Scheme scheme = GetParam();
  const int disks = scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  SchedRig rig = MakeRig(scheme, 5, disks);
  const StreamId a = rig.sched->AddStream(TestObject(0, 400)).value();
  const StreamId b = rig.sched->AddStream(TestObject(2, 400)).value();
  rig.sched->RunCycles(7);
  ASSERT_TRUE(rig.sched->StopStream(a).ok());
  ASSERT_TRUE(rig.sched->StopStream(b).ok());
  rig.sched->RunCycles(2);  // flush the cycle-end releases
  EXPECT_EQ(rig.sched->buffer_pool().in_use(), 0) << SchemeName(scheme);
  EXPECT_EQ(rig.sched->metrics().terminated_streams, 2);
}

TEST_P(VcrPerScheme, StopDuringDegradedModeCleansUp) {
  const Scheme scheme = GetParam();
  const int disks = scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  SchedRig rig = MakeRig(scheme, 5, disks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->RunCycles(3);
  rig.sched->OnDiskFailed(1, false);
  rig.sched->RunCycles(5);
  ASSERT_TRUE(rig.sched->StopStream(id).ok());
  rig.sched->RunCycles(2);
  EXPECT_EQ(rig.sched->buffer_pool().in_use(), 0) << SchemeName(scheme);
}

INSTANTIATE_TEST_SUITE_P(Schemes, VcrPerScheme,
                         ::testing::Values(Scheme::kStreamingRaid,
                                           Scheme::kStaggeredGroup,
                                           Scheme::kNonClustered,
                                           Scheme::kImprovedBandwidth));

TEST(VcrControlsTest, StateMachineRejectsBadTransitions) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  EXPECT_FALSE(rig.sched->ResumeStream(id).ok());  // not paused
  ASSERT_TRUE(rig.sched->PauseStream(id).ok());
  EXPECT_FALSE(rig.sched->PauseStream(id).ok());  // already paused
  ASSERT_TRUE(rig.sched->StopStream(id).ok());    // stop while paused: OK
  EXPECT_FALSE(rig.sched->StopStream(id).ok());   // already stopped
  EXPECT_FALSE(rig.sched->PauseStream(99).ok());  // unknown id
  // A completed stream cannot be stopped.
  const StreamId done = rig.sched->AddStream(TestObject(2, 4)).value();
  rig.sched->RunCycles(4);
  EXPECT_EQ(rig.sched->FindStream(done)->state(),
            StreamState::kCompleted);
  EXPECT_FALSE(rig.sched->StopStream(done).ok());
}

TEST(VcrControlsTest, ServerAdmissionAccounting) {
  ServerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  config.admission_override = 2;
  auto server = std::move(MultimediaServer::Create(config).value());
  MediaObject movie;
  movie.id = 0;
  movie.rate_mb_s = config.params.object_rate_mb_s;
  movie.num_tracks = 200;
  ASSERT_TRUE(server->AddObject(movie).ok());

  const StreamId a = server->StartStream(0).value();
  server->StartStream(0).value();
  EXPECT_FALSE(server->StartStream(0).ok());  // full

  // Pausing does NOT free the slot (bandwidth stays reserved)...
  ASSERT_TRUE(server->PauseStream(a).ok());
  server->RunCycles(5);
  EXPECT_FALSE(server->StartStream(0).ok());
  // ...stopping does.
  ASSERT_TRUE(server->StopStream(a).ok());
  EXPECT_TRUE(server->StartStream(0).ok());
  EXPECT_EQ(server->admission().active(), 2);
  server->RunCycles(300);  // the remaining streams complete
  EXPECT_EQ(server->admission().active(), 0);
}

}  // namespace
}  // namespace ftms
