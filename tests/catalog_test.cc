#include "layout/catalog.h"

#include <gtest/gtest.h>

#include <memory>

#include "layout/media_object.h"
#include "util/units.h"

namespace ftms {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = CreateLayout(Scheme::kStreamingRaid, 20, 5).value();
    // 1 GB disks of 50 KB tracks -> 20000 tracks per disk.
    catalog_ = std::make_unique<Catalog>(layout_.get(), 20000);
  }

  std::unique_ptr<Layout> layout_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, CapacityIsDataFraction) {
  // 20 disks x 20000 tracks, 4/5 data -> 320000 data tracks.
  EXPECT_EQ(catalog_->data_track_capacity(), 320000);
}

TEST_F(CatalogTest, AddGetRemove) {
  const MediaObject movie =
      MakeMovie(1, "movie", 90.0, kMpeg1RateMbS, 0.05);
  ASSERT_TRUE(catalog_->Add(movie).ok());
  EXPECT_TRUE(catalog_->Contains(1));
  EXPECT_EQ(catalog_->Get(1)->name, "movie");
  EXPECT_FALSE(catalog_->Get(2).ok());

  EXPECT_EQ(catalog_->Add(movie).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog_->Remove(1).ok());
  EXPECT_FALSE(catalog_->Contains(1));
  EXPECT_EQ(catalog_->Remove(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_->used_data_tracks(), 0);
  EXPECT_EQ(catalog_->used_parity_tracks(), 0);
}

TEST_F(CatalogTest, SpaceAccountingRoundsToGroups) {
  MediaObject tiny;
  tiny.id = 9;
  tiny.num_tracks = 5;  // 2 groups of 4 data tracks -> 8 data + 2 parity
  ASSERT_TRUE(catalog_->Add(tiny).ok());
  EXPECT_EQ(catalog_->used_data_tracks(), 8);
  EXPECT_EQ(catalog_->used_parity_tracks(), 2);
}

TEST_F(CatalogTest, ExhaustionTriggersPurgeWorkflow) {
  // A 90-min MPEG-1 movie is ~1 GB = ~20000 tracks (one disk's worth of
  // data): 16 of them fill the 320000-track working set.
  int added = 0;
  for (int i = 0; i < 30; ++i) {
    const MediaObject movie =
        MakeMovie(i, "m", 90.0, kMpeg1RateMbS, 0.05);
    if (!catalog_->Add(movie).ok()) break;
    ++added;
  }
  EXPECT_GT(added, 10);
  EXPECT_LT(added, 30);
  // The paper's Figure 1 flow: purge a disk-resident object to make room.
  ASSERT_TRUE(catalog_->Remove(0).ok());
  EXPECT_TRUE(
      catalog_->Add(MakeMovie(100, "new", 90.0, kMpeg1RateMbS, 0.05)).ok());
}

TEST_F(CatalogTest, RejectsEmptyObject) {
  MediaObject empty;
  empty.id = 1;
  empty.num_tracks = 0;
  EXPECT_EQ(catalog_->Add(empty).code(),
            StatusCode::kInvalidArgument);
}

TEST(MediaObjectTest, MakeMovieComputesTracksAndDuration) {
  // 90 min at 1.5 Mb/s = 0.1875 MB/s -> 1012.5 MB -> 20250 tracks.
  const MediaObject m = MakeMovie(0, "m", 90.0, kMpeg1RateMbS, 0.05);
  EXPECT_EQ(m.num_tracks, 20250);
  EXPECT_NEAR(m.SizeMb(0.05), 1012.5, 1e-9);
  EXPECT_NEAR(m.DurationSeconds(0.05), 90.0 * 60.0, 1e-6);
}

}  // namespace
}  // namespace ftms
