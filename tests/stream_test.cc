#include "stream/stream.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

MediaObject ShortObject(int tracks) {
  MediaObject obj;
  obj.id = 1;
  obj.name = "short";
  obj.num_tracks = tracks;
  return obj;
}

TEST(StreamTest, DeliversToCompletion) {
  Stream s(0, ShortObject(3));
  EXPECT_EQ(s.state(), StreamState::kActive);
  EXPECT_EQ(s.tracks_remaining(), 3);
  s.Deliver(10, true);
  s.Deliver(11, true);
  EXPECT_EQ(s.position(), 2);
  EXPECT_FALSE(s.finished());
  s.Deliver(12, true);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.state(), StreamState::kCompleted);
  EXPECT_EQ(s.delivered_tracks(), 3);
  EXPECT_EQ(s.hiccup_count(), 0);
}

TEST(StreamTest, HiccupsAreLoggedWithCycleAndTrack) {
  Stream s(0, ShortObject(5));
  s.Deliver(1, true);
  s.Deliver(2, false);  // hiccup on track 1 in cycle 2
  s.Deliver(3, true);
  ASSERT_EQ(s.hiccup_count(), 1);
  EXPECT_EQ(s.hiccups()[0].cycle, 2);
  EXPECT_EQ(s.hiccups()[0].track, 1);
  // A hiccup does not stall playback (the viewer sees a glitch but the
  // stream keeps its real-time schedule).
  EXPECT_EQ(s.position(), 3);
}

TEST(StreamTest, TerminatedStreamIgnoresDelivery) {
  Stream s(0, ShortObject(5));
  s.Terminate();
  EXPECT_EQ(s.state(), StreamState::kTerminated);
  s.Deliver(1, true);
  EXPECT_EQ(s.position(), 0);
  EXPECT_EQ(s.delivered_tracks(), 0);
}

}  // namespace
}  // namespace ftms
