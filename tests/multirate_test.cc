#include <gtest/gtest.h>

#include "model/sizing.h"
#include "sched/non_clustered_scheduler.h"
#include "server/server.h"
#include "tests/sched_test_util.h"
#include "util/units.h"

namespace ftms {
namespace {

// Multi-rate extension: the Non-clustered scheduler serves streams whose
// rate is an integer multiple of the base rate by delivering that many
// tracks per cycle — MPEG-2 (4.5 Mb/s) = 3x MPEG-1 (1.5 Mb/s) with the
// default rates, the mix the paper's introduction motivates.

constexpr int kC = 5;
constexpr int kDisks = 10;

TEST(MultiRateTest, RateValidation) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  EXPECT_TRUE(rig.sched->AddStream(TestObject(0, 12, 0.1875)).ok());
  EXPECT_TRUE(
      rig.sched->AddStream(TestObject(2, 12, kMpeg2RateMbS)).ok());
  EXPECT_FALSE(rig.sched->AddStream(TestObject(4, 12, 0.30)).ok());
  // Other schedulers stay single-rate.
  SchedRig sr = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  EXPECT_FALSE(sr.sched->AddStream(TestObject(0, 12, kMpeg2RateMbS)).ok());
}

TEST(MultiRateTest, Mpeg2DeliversThreeTracksPerCycle) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  const StreamId id =
      rig.sched->AddStream(TestObject(0, 24, kMpeg2RateMbS)).value();
  rig.sched->RunCycle();  // startup reads
  for (int i = 1; i <= 8; ++i) {
    rig.sched->RunCycle();
    EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), 3 * i);
  }
  EXPECT_EQ(rig.sched->FindStream(id)->state(), StreamState::kCompleted);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(MultiRateTest, MixedPopulationPlaysCleanly) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  for (int i = 0; i < 4; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 48, 0.1875)).value();
    rig.sched->AddStream(TestObject(2 * i, 48, kMpeg2RateMbS)).value();
    rig.sched->RunCycle();
  }
  rig.sched->RunCycles(80);
  for (const auto& s : rig.sched->streams()) {
    EXPECT_EQ(s->state(), StreamState::kCompleted);
    EXPECT_EQ(s->hiccup_count(), 0);
  }
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
}

TEST(MultiRateTest, SingleFailureMaskedAtGroupEntryForMpeg2) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  const StreamId id =
      rig.sched->AddStream(TestObject(0, 48, kMpeg2RateMbS)).value();
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);  // before first read
  rig.sched->RunCycles(40);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 0);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
}

TEST(MultiRateTest, BandwidthAccountingMatchesMixedModel) {
  // Simulated capacity: base streams consume 1 slot per cycle, MPEG-2
  // streams 3 — the MixedRateMaxStreams bandwidth-conservation law in
  // simulation form. With 12 slots/disk and streams spread over all
  // (cluster, position) pairs, 4 MPEG-2 streams per disk-slot-group
  // replace 12 MPEG-1 streams.
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, 20);
  // 16 MPEG-2 streams, spread: equivalent load of 48 base streams over
  // 16 data disks = 3/disk-cycle, well within 12 slots.
  for (int i = 0; i < 16; ++i) {
    rig.sched->AddStream(TestObject(i % 4, 96, kMpeg2RateMbS)).value();
    if (i % 4 == 3) rig.sched->RunCycle();
  }
  rig.sched->RunCycles(60);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
  EXPECT_EQ(rig.sched->metrics().hiccups, 0);
}

TEST(MultiRateTest, BufferUseScalesWithRate) {
  // An m-rate stream holds ~2m buffers (m in flight + m being sent).
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 600, kMpeg2RateMbS)).value();
  rig.sched->RunCycles(10);
  EXPECT_LE(rig.sched->buffer_pool().peak_in_use(), 6);
  EXPECT_GE(rig.sched->buffer_pool().peak_in_use(), 3);
}


TEST(MultiRateTest, ServerWeightsAdmissionByRate) {
  // An MPEG-2 stream consumes 3 base-stream equivalents of the
  // admission budget (its disk bandwidth share), so capacity 6 admits
  // 6 MPEG-1 viewers or 2 MPEG-2 viewers.
  ServerConfig config;
  config.scheme = Scheme::kNonClustered;
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  config.admission_override = 6;
  auto server = std::move(MultimediaServer::Create(config).value());
  MediaObject mpeg1;
  mpeg1.id = 0;
  mpeg1.rate_mb_s = 0.1875;
  mpeg1.num_tracks = 48;
  MediaObject mpeg2;
  mpeg2.id = 1;
  mpeg2.rate_mb_s = kMpeg2RateMbS;
  mpeg2.num_tracks = 48;
  ASSERT_TRUE(server->AddObject(mpeg1).ok());
  ASSERT_TRUE(server->AddObject(mpeg2).ok());

  ASSERT_TRUE(server->StartStream(1).ok());  // 3 of 6
  ASSERT_TRUE(server->StartStream(1).ok());  // 6 of 6
  EXPECT_EQ(server->StartStream(0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(server->admission().active(), 6);

  server->RunCycles(60);  // both complete (16 + startup cycles)
  EXPECT_EQ(server->admission().active(), 0);
  // Now six base-rate viewers fit.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(server->StartStream(0).ok());
  EXPECT_FALSE(server->StartStream(0).ok());
}

}  // namespace
}  // namespace ftms
