#include "reliability/markov_sim.h"

#include <gtest/gtest.h>

#include "model/reliability_model.h"
#include "reliability/failure_process.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace ftms {
namespace {

// Monte-Carlo runs use scaled-down MTTF/MTTR so the rare events are
// observable; the closed forms are exact in the MTTR/MTTF -> 0 limit, so
// we allow a generous (but bounded) tolerance.

TEST(ReliabilitySimTest, ClusteredCatastropheMatchesEquation4) {
  ReliabilitySimConfig config;
  config.num_disks = 40;
  config.parity_group_size = 5;
  config.scheme = Scheme::kStreamingRaid;
  config.mttf_hours = 2000.0;
  config.mttr_hours = 5.0;
  config.trials = 400;
  const ReliabilityEstimate est =
      EstimateMttfCatastrophic(config).value();

  SystemParameters p;
  p.num_disks = config.num_disks;
  p.disk.mttf_hours = config.mttf_hours;
  p.disk.mttr_hours = config.mttr_hours;
  const double predicted =
      MttfCatastrophicHours(p, Scheme::kStreamingRaid, 5).value();
  EXPECT_NEAR(est.mean_hours, predicted, 0.25 * predicted);
  EXPECT_GT(est.trials, 0);
  EXPECT_GT(est.ci95_hours, 0);
}

TEST(ReliabilitySimTest, ImprovedBandwidthIsLessReliable) {
  // Equation (5)'s (2C-1) exposure: IB reaches catastrophe roughly twice
  // as fast as the clustered schemes on the same farm.
  ReliabilitySimConfig config;
  config.num_disks = 40;
  config.parity_group_size = 5;
  config.mttf_hours = 2000.0;
  config.mttr_hours = 5.0;
  config.trials = 400;

  config.scheme = Scheme::kStreamingRaid;
  const double clustered =
      EstimateMttfCatastrophic(config)->mean_hours;
  config.scheme = Scheme::kImprovedBandwidth;
  const double ib = EstimateMttfCatastrophic(config)->mean_hours;
  EXPECT_LT(ib, clustered);
  EXPECT_NEAR(clustered / ib, (2.0 * 5 - 1) / (5 - 1), 1.2);
}

TEST(ReliabilitySimTest, DualParityCatastropheMatchesClosedForm) {
  // P+Q clusters die at THREE concurrent failures. The closed form
  // MTTF^3 * 2 / (D (C-1)(C-2) MTTR^2) carries the parallel-repair
  // factor 2: in the two-down state either repair completing rescues the
  // cluster, so it drains at rate 2/MTTR.
  ReliabilitySimConfig config;
  config.num_disks = 40;
  config.parity_group_size = 5;
  config.scheme = Scheme::kStreamingRaid2;
  config.mttf_hours = 1000.0;
  config.mttr_hours = 20.0;
  config.trials = 300;
  const ReliabilityEstimate est =
      EstimateMttfCatastrophic(config).value();

  SystemParameters p;
  p.num_disks = config.num_disks;
  p.disk.mttf_hours = config.mttf_hours;
  p.disk.mttr_hours = config.mttr_hours;
  const double predicted =
      MttfCatastrophicHours(p, Scheme::kStreamingRaid2, 5).value();
  EXPECT_NEAR(est.mean_hours, predicted, 0.30 * predicted);
  // And it must sit far above the single-parity farm's MTTF.
  const double single =
      MttfCatastrophicHours(p, Scheme::kStreamingRaid, 5).value();
  EXPECT_GT(est.mean_hours, 3.0 * single);
}

TEST(ReliabilitySimTest, KConcurrentMatchesEquation6UpToFactorial) {
  // The exact birth-death hitting time for K concurrent failures is
  // (K-1)! * MTTF^K / (D (D-1) ... (D-K+1) MTTR^(K-1)): in state j the
  // aggregate repair rate is j/MTTR, contributing the factorial the
  // paper's equation (6) drops. For K = 2 (equation (4)) the factor is 1
  // and the forms agree; for K = 3 equation (6) undercounts by 2x. We
  // validate the exact form and record the paper's approximation.
  ReliabilitySimConfig config;
  config.num_disks = 20;
  config.parity_group_size = 5;
  config.mttf_hours = 1000.0;
  config.mttr_hours = 2.0;
  config.trials = 300;
  const ReliabilityEstimate est = EstimateKConcurrent(config, 3).value();
  const double eq6 = KConcurrentFailuresMeanHours(
      config.mttf_hours, config.mttr_hours, config.num_disks, 3);
  const double exact = 2.0 * eq6;  // (K-1)! for K = 3
  EXPECT_NEAR(est.mean_hours, exact, 0.25 * exact);
  // The paper's form is a strict underestimate here.
  EXPECT_GT(est.mean_hours, eq6 * 1.3);
}

TEST(ReliabilitySimTest, KOneIsFirstFailure) {
  ReliabilitySimConfig config;
  config.num_disks = 50;
  config.mttf_hours = 1000.0;
  config.trials = 500;
  const ReliabilityEstimate est = EstimateKConcurrent(config, 1).value();
  EXPECT_NEAR(est.mean_hours, 1000.0 / 50, 0.15 * (1000.0 / 50));
}

TEST(ReliabilitySimTest, DeterministicGivenSeed) {
  ReliabilitySimConfig config;
  config.num_disks = 20;
  config.mttf_hours = 500.0;
  config.mttr_hours = 5.0;
  config.trials = 50;
  const double a = EstimateMttfCatastrophic(config)->mean_hours;
  const double b = EstimateMttfCatastrophic(config)->mean_hours;
  EXPECT_EQ(a, b);
  config.seed = 999;
  const double c = EstimateMttfCatastrophic(config)->mean_hours;
  EXPECT_NE(a, c);
}

TEST(ReliabilitySimTest, ValidatesConfig) {
  ReliabilitySimConfig config;
  config.num_disks = 0;
  EXPECT_FALSE(EstimateMttfCatastrophic(config).ok());
  config = ReliabilitySimConfig();
  config.num_disks = 7;  // not a multiple of the cluster size
  EXPECT_FALSE(EstimateMttfCatastrophic(config).ok());
  config = ReliabilitySimConfig();
  EXPECT_FALSE(EstimateKConcurrent(config, 0).ok());
}

TEST(FailureProcessTest, DrivesFailuresAndRepairs) {
  Simulator sim;
  DiskParameters params;
  params.mttf_hours = 10.0;  // very unreliable disks for a fast test
  params.mttr_hours = 1.0;
  DiskArray disks = std::move(DiskArray::Create(10, 5, params).value());
  int failures_seen = 0;
  int repairs_seen = 0;
  FailureProcess process(
      &sim, &disks, /*seed=*/7,
      {.on_failure = [&](int) { ++failures_seen; },
       .on_repair = [&](int) { ++repairs_seen; }});
  process.Start();
  sim.RunUntil(100.0 * kSecondsPerHour);
  EXPECT_GT(failures_seen, 10);
  EXPECT_GT(repairs_seen, 5);
  EXPECT_EQ(process.failures_injected(), failures_seen);
  EXPECT_EQ(process.repairs_completed(), repairs_seen);
  // Conservation: every disk is either up, or down awaiting repair.
  EXPECT_EQ(disks.NumFailed(), failures_seen - repairs_seen);
}

}  // namespace
}  // namespace ftms
