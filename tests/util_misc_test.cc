#include <gtest/gtest.h>

#include <sstream>

#include "util/log.h"
#include "util/units.h"

namespace ftms {
namespace {

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(MbitsToMBytes(1.5), 0.1875);
  EXPECT_DOUBLE_EQ(MbitsToMBytes(4.5), 0.5625);
  EXPECT_DOUBLE_EQ(MBytesToMbits(0.1875), 1.5);
  EXPECT_DOUBLE_EQ(kMpeg1RateMbS, 0.1875);
  EXPECT_DOUBLE_EQ(kMpeg2RateMbS, 0.5625);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(HoursToYears(8760.0), 1.0);
  EXPECT_DOUBLE_EQ(YearsToHours(2.0), 17520.0);
  EXPECT_DOUBLE_EQ(HoursToYears(YearsToHours(123.4)), 123.4);
  EXPECT_DOUBLE_EQ(KilobytesToMegabytes(50.0), 0.05);
}

TEST(LogTest, LevelFiltering) {
  // Capture stderr around a filtered and an emitted message.
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  FTMS_LOG(Debug) << "hidden";
  FTMS_LOG(Warning) << "visible " << 42;
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible 42"), std::string::npos);
  EXPECT_NE(output.find("[W "), std::string::npos);

  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  FTMS_LOG(Debug) << "now shown";
  output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("now shown"), std::string::npos);
  SetLogLevel(LogLevel::kWarning);  // restore default
}

TEST(LogTest, IncludesSourceLocation) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  FTMS_LOG(Info) << "located";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("util_misc_test.cc"), std::string::npos);
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace ftms
