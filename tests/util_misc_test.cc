#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "util/disk_set.h"
#include "util/log.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace ftms {
namespace {

TEST(UnitsTest, RateConversions) {
  EXPECT_DOUBLE_EQ(MbitsToMBytes(1.5), 0.1875);
  EXPECT_DOUBLE_EQ(MbitsToMBytes(4.5), 0.5625);
  EXPECT_DOUBLE_EQ(MBytesToMbits(0.1875), 1.5);
  EXPECT_DOUBLE_EQ(kMpeg1RateMbS, 0.1875);
  EXPECT_DOUBLE_EQ(kMpeg2RateMbS, 0.5625);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(HoursToYears(8760.0), 1.0);
  EXPECT_DOUBLE_EQ(YearsToHours(2.0), 17520.0);
  EXPECT_DOUBLE_EQ(HoursToYears(YearsToHours(123.4)), 123.4);
  EXPECT_DOUBLE_EQ(KilobytesToMegabytes(50.0), 0.05);
}

TEST(LogTest, LevelFiltering) {
  // Capture stderr around a filtered and an emitted message.
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  FTMS_LOG(Debug) << "hidden";
  FTMS_LOG(Warning) << "visible " << 42;
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible 42"), std::string::npos);
  EXPECT_NE(output.find("[W "), std::string::npos);

  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  FTMS_LOG(Debug) << "now shown";
  output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("now shown"), std::string::npos);
  SetLogLevel(LogLevel::kWarning);  // restore default
}

TEST(LogTest, ParseLogLevel) {
  // Names, case-insensitive (what FTMS_LOG_LEVEL accepts at startup).
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Error"), LogLevel::kError);
  // Numeric forms.
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("1"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  // Garbage is rejected, not guessed.
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("4"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("-1"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(" info"), std::nullopt);
}

TEST(LogTest, IncludesSourceLocation) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  FTMS_LOG(Info) << "located";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("util_misc_test.cc"), std::string::npos);
  SetLogLevel(LogLevel::kWarning);
}

TEST(DiskSetTest, AddRemoveContains) {
  DiskSet set(8);
  EXPECT_TRUE(set.empty());
  set.Add(3);
  set.Add(3);  // idempotent
  set.Add(7);
  EXPECT_EQ(set.count(), 2);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(7));
  EXPECT_FALSE(set.Contains(4));
  set.Remove(3);
  set.Remove(3);  // idempotent
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.count(), 1);
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(7));
}

TEST(DiskSetTest, GrowsBeyondInitialSizeAndIgnoresNegatives) {
  DiskSet set(2);
  EXPECT_FALSE(set.Contains(100));  // beyond size reads as absent
  set.Add(100);
  EXPECT_TRUE(set.Contains(100));
  set.Add(-1);  // no-op
  set.Remove(-1);
  EXPECT_FALSE(set.Contains(-1));
  EXPECT_EQ(set.count(), 1);
}

TEST(DiskSetTest, InitializerListMatchesTestLiterals) {
  const DiskSet empty = {};
  EXPECT_TRUE(empty.empty());
  const DiskSet pair = {1, 2};
  EXPECT_TRUE(pair.Contains(1));
  EXPECT_TRUE(pair.Contains(2));
  EXPECT_FALSE(pair.Contains(0));
  EXPECT_EQ(pair.count(), 2);
}

TEST(ParallelForChunksTest, ChunkIndicesAreDenseAndCoverTheRange) {
  ThreadPool pool(8);
  // 9 elements over 8 workers: ceil division gives 2-element chunks, so
  // only 5 chunks exist — the count must not report empty tail chunks.
  const int64_t chunks = ParallelChunkCount(&pool, 0, 9);
  EXPECT_EQ(chunks, 5);
  std::vector<std::atomic<int>> covered(9);
  std::vector<std::atomic<int>> chunk_seen(static_cast<size_t>(chunks));
  ParallelForChunks(&pool, 0, 9,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      ASSERT_GE(chunk, 0);
                      ASSERT_LT(chunk, chunks);
                      ++chunk_seen[static_cast<size_t>(chunk)];
                      for (int64_t i = lo; i < hi; ++i) {
                        ++covered[static_cast<size_t>(i)];
                      }
                    });
  for (auto& c : covered) EXPECT_EQ(c.load(), 1);
  for (auto& c : chunk_seen) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForChunksTest, NullPoolAndEmptyRangesRunInline) {
  EXPECT_EQ(ParallelChunkCount(nullptr, 0, 100), 1);
  EXPECT_EQ(ParallelChunkCount(nullptr, 5, 5), 0);
  int calls = 0;
  int64_t seen_lo = -1;
  int64_t seen_hi = -1;
  ParallelForChunks(nullptr, 2, 40,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      ++calls;
                      EXPECT_EQ(chunk, 0);
                      seen_lo = lo;
                      seen_hi = hi;
                    });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2);
  EXPECT_EQ(seen_hi, 40);
  ParallelForChunks(nullptr, 7, 7,
                    [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);  // empty range: body never runs
}

TEST(ParallelForChunksTest, PartitionIsAFunctionOfRangeNotThreads) {
  // The chunk boundaries for a given (range, pool size) are fixed, so
  // per-chunk results folded in chunk order are bit-identical run to run.
  ThreadPool pool(4);
  const int64_t chunks = ParallelChunkCount(&pool, 10, 110);
  std::vector<std::pair<int64_t, int64_t>> bounds(
      static_cast<size_t>(chunks));
  ParallelForChunks(&pool, 10, 110,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      bounds[static_cast<size_t>(chunk)] = {lo, hi};
                    });
  int64_t expect_lo = 10;
  for (const auto& [lo, hi] : bounds) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GT(hi, lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 110);
}

}  // namespace
}  // namespace ftms
