#include "server/staging.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace ftms {
namespace {

constexpr double kTrackMb = 0.05;

class StagingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = std::move(
        CreateLayout(Scheme::kStreamingRaid, 10, 5).value());
    // 10 disks x 1000 tracks, 4/5 data -> 8000 data tracks: room for two
    // 3000-track titles (3000 -> 750 groups -> 3000 data tracks each).
    catalog_ = std::make_unique<Catalog>(layout_.get(), 1000);
    tertiary_ = std::make_unique<TertiaryStore>(TertiaryParameters{});
    staging_ = std::make_unique<StagingManager>(
        catalog_.get(), tertiary_.get(), kTrackMb,
        [this](int id) { return active_.count(id) == 0; });
    for (int i = 0; i < 5; ++i) {
      MediaObject title;
      title.id = i;
      title.name = "title_" + std::to_string(i);
      title.num_tracks = 3000;
      ASSERT_TRUE(staging_->AddToLibrary(title).ok());
    }
  }

  std::unique_ptr<Layout> layout_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<TertiaryStore> tertiary_;
  std::unique_ptr<StagingManager> staging_;
  std::set<int> active_;  // titles with running streams
};

TEST_F(StagingTest, StageInChargesTertiaryTime) {
  const double ready = staging_->EnsureResident(0, /*now_s=*/100.0).value();
  // 3000 tracks x 50 KB = 150 MB at 0.5 MB/s + 90 s switch = 390 s.
  EXPECT_NEAR(ready, 100.0 + 90.0 + 150.0 / 0.5, 1e-6);
  EXPECT_TRUE(catalog_->Contains(0));
  EXPECT_EQ(staging_->stage_ins(), 1);
  EXPECT_NEAR(staging_->mb_staged(), 150.0, 1e-9);
}

TEST_F(StagingTest, ResidentTitleIsReadyImmediately) {
  staging_->EnsureResident(0, 0.0).value();
  EXPECT_DOUBLE_EQ(staging_->EnsureResident(0, 55.0).value(), 55.0);
  EXPECT_EQ(staging_->stage_ins(), 1);
}

TEST_F(StagingTest, LruEvictionMakesRoom) {
  staging_->EnsureResident(0, 0.0).value();
  staging_->EnsureResident(1, 10.0).value();
  // Working set full (2 x 3000 of 8000... third title needs eviction).
  staging_->MarkUse(0, 50.0);  // title 1 is now least recently used
  staging_->EnsureResident(2, 100.0).value();
  EXPECT_FALSE(catalog_->Contains(1));  // evicted
  EXPECT_TRUE(catalog_->Contains(0));
  EXPECT_TRUE(catalog_->Contains(2));
  EXPECT_EQ(staging_->evictions(), 1);
}

TEST_F(StagingTest, ActiveTitlesAreNotEvicted) {
  staging_->EnsureResident(0, 0.0).value();
  staging_->EnsureResident(1, 10.0).value();
  active_ = {0, 1};  // both playing
  EXPECT_EQ(staging_->EnsureResident(2, 100.0).status().code(),
            StatusCode::kResourceExhausted);
  active_ = {0};
  EXPECT_TRUE(staging_->EnsureResident(2, 100.0).ok());
  EXPECT_FALSE(catalog_->Contains(1));
}

TEST_F(StagingTest, UnknownTitleIsNotFound) {
  EXPECT_EQ(staging_->EnsureResident(42, 0.0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StagingTest, LibraryValidation) {
  MediaObject dup;
  dup.id = 0;
  dup.num_tracks = 10;
  EXPECT_EQ(staging_->AddToLibrary(dup).code(),
            StatusCode::kAlreadyExists);
  MediaObject empty;
  empty.id = 99;
  empty.num_tracks = 0;
  EXPECT_EQ(staging_->AddToLibrary(empty).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(staging_->InLibrary(0));
  EXPECT_FALSE(staging_->InLibrary(99));
}

}  // namespace
}  // namespace ftms
