// End-to-end double-failure drill for the dual-parity (P+Q) schemes: two
// disks of one cluster fail, streams keep playing with zero hiccups, both
// disks are rebuilt with REAL bytes flowing through the two-erasure GF
// codec, and the conformance watchdog signs off the run.
#include <gtest/gtest.h>

#include "qos/conformance.h"
#include "qos/event_journal.h"
#include "qos/qos_ledger.h"
#include "server/server.h"

namespace ftms {
namespace {

ServerConfig Sr2Config() {
  ServerConfig config;
  config.scheme = Scheme::kStreamingRaid2;
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  // Tiny disks so rebuilds finish within a few cycles: 50 tracks.
  config.params.disk.capacity_mb = 2.5;
  return config;
}

MediaObject Movie(int tracks) {
  MediaObject obj;
  obj.id = 0;
  obj.rate_mb_s = 0.1875;
  obj.num_tracks = tracks;
  return obj;
}

TEST(DoubleFailureDrill, TwoFailuresInOneClusterAreMasked) {
  auto server = std::move(MultimediaServer::Create(Sr2Config()).value());
  ASSERT_TRUE(server->AddObject(Movie(60)).ok());
  server->StartStream(0).value();
  server->StartStream(0).value();
  server->RunCycles(3);
  // Disks 0 and 1 are both data disks of cluster 0 (P is on 3, Q on 4):
  // the hardest erasure pattern, repaired only by the full P+Q solve.
  ASSERT_TRUE(server->FailDisk(0).ok());
  server->RunCycles(1);
  ASSERT_TRUE(server->FailDisk(1).ok());
  server->RunCycles(40);
  for (const auto& s : server->scheduler().streams()) {
    EXPECT_EQ(s->hiccup_count(), 0);
  }
  EXPECT_EQ(server->scheduler().metrics().hiccups, 0);
  EXPECT_EQ(server->scheduler().metrics().dropped_reads, 0);
}

TEST(DoubleFailureDrill, RebuildRunsWithSecondClusterDiskDown) {
  auto server = std::move(MultimediaServer::Create(Sr2Config()).value());
  constexpr int64_t kObjectTracks = 40;
  constexpr size_t kBlockBytes = 256;
  ASSERT_TRUE(server->AddObject(Movie(kObjectTracks)).ok());
  ASSERT_TRUE(server
                  ->mutable_rebuild()
                  .AttachDataPath(0, kObjectTracks, kBlockBytes)
                  .ok());
  ASSERT_TRUE(server->FailDisk(0).ok());
  ASSERT_TRUE(server->FailDisk(1).ok());
  // Single-parity would refuse here (catastrophic); P+Q rebuilds disk 0
  // while disk 1 is still down, every byte flowing through the
  // two-erasure reconstruction.
  ASSERT_TRUE(server->StartRebuild(0).ok());
  server->RunCycles(30);
  ASSERT_FALSE(server->rebuild().Active());
  EXPECT_TRUE(server->disks().disk(0).operational());
  EXPECT_EQ(server->rebuild().data_mismatches(), 0);
  EXPECT_GT(server->rebuild().data_tracks_reconstructed(), 0);
  // Then the second disk, back to a fully healthy cluster.
  ASSERT_TRUE(server->StartRebuild(1).ok());
  server->RunCycles(30);
  ASSERT_FALSE(server->rebuild().Active());
  EXPECT_TRUE(server->disks().disk(1).operational());
  EXPECT_EQ(server->rebuild().data_mismatches(), 0);
  EXPECT_EQ(server->rebuild().rebuilds_completed(), 2);
}

TEST(DoubleFailureDrill, ThirdFailureIsCatastrophic) {
  auto server = std::move(MultimediaServer::Create(Sr2Config()).value());
  ASSERT_TRUE(server->FailDisk(0).ok());
  ASSERT_TRUE(server->FailDisk(1).ok());
  ASSERT_TRUE(server->FailDisk(2).ok());
  EXPECT_EQ(server->StartRebuild(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DoubleFailureDrill, WatchdogSignsOffTheFullDrill) {
  // The CLI drill in test form: fail two, serve degraded, rebuild both,
  // then ask the conformance watchdog for its verdict on the run.
  EventJournal journal;
  QosLedger ledger;
  ledger.set_journal(&journal);
  ServerConfig config = Sr2Config();
  config.journal = &journal;
  config.ledger = &ledger;
  auto server = std::move(MultimediaServer::Create(config).value());
  ASSERT_TRUE(server->AddObject(Movie(24)).ok());
  server->StartStream(0).value();
  server->RunCycles(1);
  server->StartStream(0).value();
  server->RunCycles(4);
  ASSERT_TRUE(server->FailDisk(0, /*mid_cycle=*/true).ok());
  server->RunCycles(1);
  ASSERT_TRUE(server->FailDisk(1, /*mid_cycle=*/true).ok());
  server->RunCycles(5);
  for (int disk = 0; disk < 2; ++disk) {
    ASSERT_TRUE(server->StartRebuild(disk).ok());
    for (int i = 0; i < 200 && server->rebuild().Active(); ++i) {
      server->RunCycles(1);
    }
    ASSERT_FALSE(server->rebuild().Active());
  }
  server->RunCycles(4);

  ConformanceWatchdog watchdog(&server->scheduler(), &journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings))
      << ConformanceWatchdog::FormatTable(findings);
  // Two concurrent failures are IN SPEC for dual parity: the masking
  // check must have actually run, not been skipped as catastrophic.
  bool masked_checked = false;
  for (const auto& f : findings) {
    if (f.check == "sr2_two_failure_masking") masked_checked = f.applicable;
  }
  EXPECT_TRUE(masked_checked);
}

}  // namespace
}  // namespace ftms
