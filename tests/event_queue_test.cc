#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/random.h"

namespace ftms {
namespace {

// The event queues' contract: pop order is exactly (time, seq) regardless
// of implementation — the calendar's buckets, overflow heap, and resizes
// are invisible. These tests drive the edges the calendar's bucket math
// must get right (ties, far-future overflow, clock-adjacent inserts,
// resize churn) and the inline/slab split of EventCallback.

EventRec Rec(SimTime t, uint64_t seq) {
  return EventRec{t, seq, [] {}};
}

std::vector<std::pair<SimTime, uint64_t>> Drain(EventQueue& q) {
  std::vector<std::pair<SimTime, uint64_t>> out;
  EventRec rec;
  while (q.PopMin(&rec)) out.emplace_back(rec.time, rec.seq);
  return out;
}

class EventQueueBothKinds : public ::testing::TestWithParam<EventQueueKind> {
 protected:
  std::unique_ptr<EventQueue> queue_ = MakeEventQueue(GetParam());
};

TEST_P(EventQueueBothKinds, PopsInTimeOrder) {
  const double times[] = {5.0, 1.0, 3.0, 2.0, 4.0, 0.5};
  uint64_t seq = 0;
  for (double t : times) queue_->Push(Rec(t, seq++));
  const auto order = Drain(*queue_);
  ASSERT_EQ(order.size(), 6u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1].first, order[i].first);
  }
}

TEST_P(EventQueueBothKinds, TiesBreakBySequence) {
  for (uint64_t s = 0; s < 64; ++s) queue_->Push(Rec(7.0, s));
  const auto order = Drain(*queue_);
  ASSERT_EQ(order.size(), 64u);
  for (uint64_t s = 0; s < 64; ++s) EXPECT_EQ(order[s].second, s);
}

TEST_P(EventQueueBothKinds, InterleavedTiesAcrossPops) {
  // Push ties, drain half, push more ties at the same timestamp: the
  // later pushes must come out after the earlier ones (sorted insert into
  // the calendar's partially drained current bucket).
  for (uint64_t s = 0; s < 4; ++s) queue_->Push(Rec(1.0, s));
  EventRec rec;
  ASSERT_TRUE(queue_->PopMin(&rec));
  EXPECT_EQ(rec.seq, 0u);
  ASSERT_TRUE(queue_->PopMin(&rec));
  EXPECT_EQ(rec.seq, 1u);
  for (uint64_t s = 4; s < 8; ++s) queue_->Push(Rec(1.0, s));
  const auto rest = Drain(*queue_);
  ASSERT_EQ(rest.size(), 6u);
  for (size_t i = 0; i < rest.size(); ++i) {
    EXPECT_EQ(rest[i].second, i + 2);
  }
}

TEST_P(EventQueueBothKinds, MinTimeTracksEarliestEvent) {
  queue_->Push(Rec(9.0, 0));
  EXPECT_EQ(queue_->MinTime(), 9.0);
  queue_->Push(Rec(2.0, 1));
  EXPECT_EQ(queue_->MinTime(), 2.0);
  EventRec rec;
  ASSERT_TRUE(queue_->PopMin(&rec));
  EXPECT_EQ(queue_->MinTime(), 9.0);
}

TEST_P(EventQueueBothKinds, FarFutureEventsReturnInOrder) {
  // A sparse far tail (way outside any initial calendar window) mixed
  // with near events: the calendar parks these in its overflow heap and
  // must still interleave them correctly as the window slides out.
  uint64_t seq = 0;
  queue_->Push(Rec(1e12, seq++));
  queue_->Push(Rec(0.5, seq++));
  queue_->Push(Rec(1e6, seq++));
  queue_->Push(Rec(2.0, seq++));
  queue_->Push(Rec(1e12, seq++));  // tie in the far future
  const auto order = Drain(*queue_);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0].first, 0.5);
  EXPECT_EQ(order[1].first, 2.0);
  EXPECT_EQ(order[2].first, 1e6);
  EXPECT_EQ(order[3], (std::pair<SimTime, uint64_t>{1e12, 0}));
  EXPECT_EQ(order[4], (std::pair<SimTime, uint64_t>{1e12, 4}));
}

TEST_P(EventQueueBothKinds, GrowShrinkChurnKeepsOrder) {
  // Push far past the grow threshold, drain past the shrink threshold,
  // refill — exercises both resize directions and width re-estimation.
  Rng rng(123);
  uint64_t seq = 0;
  std::vector<std::pair<SimTime, uint64_t>> expected;
  auto push = [&](double t) {
    queue_->Push(Rec(t, seq));
    expected.emplace_back(t, seq);
    ++seq;
  };
  for (int i = 0; i < 3000; ++i) push(rng.NextDouble() * 100.0);
  EventRec rec;
  for (int i = 0; i < 2900; ++i) ASSERT_TRUE(queue_->PopMin(&rec));
  for (int i = 0; i < 500; ++i) push(100.0 + rng.NextDouble() * 10.0);
  std::sort(expected.begin(), expected.end());
  const auto tail = Drain(*queue_);
  ASSERT_EQ(tail.size(), 600u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], expected[2900 + i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EventQueueBothKinds,
                         ::testing::Values(EventQueueKind::kHeap,
                                           EventQueueKind::kCalendar));

TEST(CalendarEventQueueTest, FarFutureParksInOverflow) {
  CalendarEventQueue q;
  q.Push(Rec(0.5, 0));
  q.Push(Rec(1e15, 1));
  EXPECT_EQ(q.overflow_size(), 1u);
  EventRec rec;
  ASSERT_TRUE(q.PopMin(&rec));
  EXPECT_EQ(rec.time, 0.5);
  // The jump to the overflow minimum promotes it into the window.
  EXPECT_EQ(q.MinTime(), 1e15);
  EXPECT_EQ(q.overflow_size(), 0u);
}

TEST(CalendarEventQueueTest, ResizeTracksPopulation) {
  CalendarEventQueue q;
  const size_t initial = q.num_buckets();
  for (uint64_t s = 0; s < 4096; ++s) {
    q.Push(Rec(static_cast<double>(s) * 0.25, s));
  }
  EXPECT_GT(q.num_buckets(), initial);
  EventRec rec;
  while (q.PopMin(&rec)) {
  }
  EXPECT_EQ(q.num_buckets(), initial);  // shrank back to the floor
}

TEST(CalendarEventQueueTest, SameTimestampBatchSharesOneBucket) {
  // The simulation's dominant mix: a whole cycle's worth of events at one
  // timestamp. All land in one bucket regardless of count.
  CalendarEventQueue q;
  for (uint64_t s = 0; s < 1000; ++s) q.Push(Rec(42.0, s));
  const auto order = Drain(q);
  for (uint64_t s = 0; s < 1000; ++s) EXPECT_EQ(order[s].second, s);
}

// Randomized differential: the calendar must agree with the heap oracle
// event for event under interleaved pushes and pops with clustered,
// uniform, and far-future times.
TEST(CalendarEventQueueTest, RandomDifferentialAgainstHeap) {
  Rng rng(20260808);
  HeapEventQueue heap;
  CalendarEventQueue cal;
  uint64_t seq = 0;
  double clock = 0;
  for (int round = 0; round < 20000; ++round) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || heap.empty()) {
      double t;
      const double mix = rng.NextDouble();
      if (mix < 0.5) {
        t = clock + static_cast<double>(rng.UniformInt(4));  // clustered ties
      } else if (mix < 0.9) {
        t = clock + rng.ExponentialMean(1.0);
      } else {
        t = clock + 1e9 * rng.NextDouble();  // far future
      }
      heap.Push(Rec(t, seq));
      cal.Push(Rec(t, seq));
      ++seq;
    } else {
      EventRec a, b;
      ASSERT_EQ(heap.MinTime(), cal.MinTime());
      ASSERT_TRUE(heap.PopMin(&a));
      ASSERT_TRUE(cal.PopMin(&b));
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      clock = a.time;
    }
    ASSERT_EQ(heap.size(), cal.size());
  }
  while (!heap.empty()) {
    EventRec a, b;
    ASSERT_TRUE(heap.PopMin(&a));
    ASSERT_TRUE(cal.PopMin(&b));
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventCallbackTest, SmallTrivialCapturesAreInline) {
  int x = 0;
  int* p = &x;
  EventCallback cb([p] { *p = 7; });  // one word, trivial
  EXPECT_TRUE(cb.inlined());
  cb();
  EXPECT_EQ(x, 7);
}

TEST(EventCallbackTest, ThreeWordCaptureIsInline) {
  int64_t a = 1, b = 2, c = 3;
  int64_t sum = 0;
  int64_t* out = &sum;
  struct Cap {
    int64_t a, b;
    int64_t* out;
  };
  Cap cap{a, b, out};
  EventCallback cb([cap] { *cap.out = cap.a + cap.b; });
  EXPECT_TRUE(cb.inlined());
  cb();
  EXPECT_EQ(sum, 3);
  (void)c;
}

TEST(EventCallbackTest, LargeCaptureSpillsToSlabAndRuns) {
  std::array<int64_t, 8> big{1, 2, 3, 4, 5, 6, 7, 8};
  int64_t sum = 0;
  int64_t* out = &sum;
  EventCallback cb([big, out] {
    int64_t s = 0;
    for (int64_t v : big) s += v;
    *out = s;
  });
  EXPECT_FALSE(cb.inlined());
  cb();
  EXPECT_EQ(sum, 36);
}

TEST(EventCallbackTest, NonTrivialCaptureSpillsAndDestroys) {
  auto tracked = std::make_shared<int>(5);
  std::weak_ptr<int> weak = tracked;
  {
    EventCallback cb([tracked] { (void)*tracked; });
    EXPECT_FALSE(cb.inlined());
    tracked.reset();
    EXPECT_FALSE(weak.expired());  // callback keeps the capture alive
    cb();
  }
  EXPECT_TRUE(weak.expired());  // destroying the callback ran the dtor
}

TEST(EventCallbackTest, MoveTransfersOwnership) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> weak = tracked;
  EventCallback a([tracked] {});
  tracked.reset();
  EventCallback b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  EXPECT_FALSE(weak.expired());
  b = EventCallback([] {});
  EXPECT_TRUE(weak.expired());  // assignment disposed the old capture
}

TEST(EventCallbackTest, SlabRecyclesFreedBlocks) {
  // Steady-state churn of spilled callbacks must recycle the same slab
  // blocks (pointer equality is not guaranteed by the API, but churning
  // many times must not grow without bound — smoke-checked by running a
  // large loop; the real assertion is that nothing crashes under reuse).
  for (int i = 0; i < 10000; ++i) {
    std::array<int64_t, 6> payload{};
    payload[0] = i;
    int64_t out = 0;
    int64_t* p = &out;
    EventCallback cb([payload, p] { *p = payload[0]; });
    cb();
    ASSERT_EQ(out, i);
  }
}

// Simulator-level edges of the new engine.

class SimulatorBothQueues : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(SimulatorBothQueues, NegativeDelayClampsToNow) {
  Simulator sim(GetParam());
  sim.Schedule(2.0, [] {});
  sim.Run();
  bool fired = false;
  sim.Schedule(-5.0, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 2.0);
}

TEST_P(SimulatorBothQueues, RunUntilHonorsHorizonExactly) {
  Simulator sim(GetParam());
  std::vector<double> fired;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<double>(i), [&fired, i] {
      fired.push_back(static_cast<double>(i));
    });
  }
  sim.RunUntil(4.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.Now(), 4.0);
  sim.RunUntil(4.5);  // no events in (4, 4.5]
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.Now(), 4.5);
  sim.Run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST_P(SimulatorBothQueues, PeriodicTimerCancelStopsTicks) {
  Simulator sim(GetParam());
  int ticks = 0;
  PeriodicTimer timer(&sim, 1.0, [&] {
    ++ticks;
    return true;
  });
  timer.Start(0.0);
  sim.RunUntil(2.5);
  EXPECT_EQ(ticks, 3);  // t = 0, 1, 2
  EXPECT_TRUE(timer.active());
  timer.Cancel();
  sim.RunUntil(10.0);
  EXPECT_EQ(ticks, 3);  // queued firing became a no-op
  EXPECT_FALSE(timer.active());
  EXPECT_TRUE(sim.empty());
}

TEST_P(SimulatorBothQueues, PeriodicTicksInterleaveFifoWithScheduledEvents) {
  // The tick body runs BEFORE the next firing is scheduled, so an event
  // the tick schedules for the next period gets a SMALLER sequence number
  // than the next tick and runs first — the legacy Ticker ordering the
  // intrusive timer must preserve.
  Simulator sim(GetParam());
  std::vector<std::string> order;
  int n = 0;
  SchedulePeriodic(sim, 0.0, 1.0, [&] {
    order.push_back("tick" + std::to_string(n));
    sim.Schedule(1.0, [&order, n2 = n] {
      order.push_back("echo" + std::to_string(n2));
    });
    return ++n < 3;
  });
  sim.Run();
  const std::vector<std::string> expected = {"tick0", "echo0", "tick1",
                                             "echo1", "tick2", "echo2"};
  EXPECT_EQ(order, expected);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SimulatorBothQueues,
                         ::testing::Values(EventQueueKind::kHeap,
                                           EventQueueKind::kCalendar));

}  // namespace
}  // namespace ftms
