#include <gtest/gtest.h>

#include "model/capacity.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// Does the analytical stream capacity (equations (8)-(11)) actually
// schedule? These tests admit the model's stream count on a scaled farm
// (D = 20, so capacities are exact fifths of Table 2's) with streams
// spread evenly over home clusters and phases, then check that no read
// is ever dropped for lack of slots.

SystemParameters ScaledParams(int num_disks) {
  SystemParameters p;
  p.num_disks = num_disks;
  return p;
}

TEST(CapacityRealizationTest, StreamingRaidAnalyticCapacitySchedules) {
  constexpr int kC = 5;
  constexpr int kDisks = 20;  // 4 clusters
  const int capacity =
      MaxStreams(ScaledParams(kDisks), Scheme::kStreamingRaid, kC)
          .value();  // 208 = 1041/5 (scaled)
  EXPECT_EQ(capacity, 208);

  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  // Slots per disk: one full-stroke seek + 52 tracks fit in the 1.067 s
  // cycle; 208 streams over 4 clusters book exactly 52 reads per disk.
  EXPECT_EQ(rig.sched->slots_per_disk(), 52);
  for (int i = 0; i < capacity; ++i) {
    // Object id = i % 4 spreads home clusters evenly.
    rig.sched->AddStream(TestObject(i % 4, 4000)).value();
  }
  rig.sched->RunCycles(30);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
  EXPECT_EQ(rig.sched->metrics().hiccups, 0);
}

TEST(CapacityRealizationTest, BeyondCapacityDropsReads) {
  constexpr int kC = 5;
  constexpr int kDisks = 20;
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const int capacity =
      MaxStreams(ScaledParams(kDisks), Scheme::kStreamingRaid, kC).value();
  for (int i = 0; i < capacity + 4; ++i) {
    rig.sched->AddStream(TestObject(i % 4, 4000)).value();
  }
  rig.sched->RunCycles(30);
  EXPECT_GT(rig.sched->metrics().dropped_reads, 0);
  EXPECT_GT(rig.sched->metrics().hiccups, 0);
}

TEST(CapacityRealizationTest, NonClusteredRoundingGranularity) {
  // NC at D = 20: the analytic bound is 193 streams (12.08/disk) but the
  // integral slot budget is 12 tracks/disk/cycle = 192 schedulable
  // streams: the fractional headroom of the closed form is not
  // realizable — a (documented) one-stream rounding gap.
  constexpr int kC = 5;
  constexpr int kDisks = 20;
  const int analytic =
      MaxStreams(ScaledParams(kDisks), Scheme::kNonClustered, kC).value();
  EXPECT_EQ(analytic, 193);

  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks);
  EXPECT_EQ(rig.sched->slots_per_disk(), 12);
  // 192 streams spread over 4 home clusters x 4 positions: zero drops.
  for (int i = 0; i < 192; ++i) {
    rig.sched->AddStream(TestObject(i % 4, 4000)).value();
    if (i % 12 == 11) rig.sched->RunCycle();  // stagger positions
  }
  rig.sched->RunCycles(60);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
}

TEST(CapacityRealizationTest, ImprovedBandwidthUsesAllDisks) {
  // IB at D = 16 (4 clusters of 4), C = 5: every disk serves data; with
  // one stream population per cluster the farm runs k' = 4 groups per
  // cycle per stream with zero parity traffic.
  constexpr int kC = 5;
  constexpr int kDisks = 16;
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, kC, kDisks);
  const int slots = rig.sched->slots_per_disk();
  for (int s = 0; s < slots; ++s) {
    for (int cl = 0; cl < 4; ++cl) {
      rig.sched->AddStream(TestObject(cl, 4000)).value();
    }
  }
  rig.sched->RunCycles(20);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
  EXPECT_EQ(rig.sched->metrics().parity_reads, 0);
  // Every disk is fully booked every cycle: aggregate data reads per
  // cycle = 16 disks x slots.
  EXPECT_EQ(rig.sched->metrics().data_reads,
            static_cast<int64_t>(20) * kDisks * slots);
}

}  // namespace
}  // namespace ftms
