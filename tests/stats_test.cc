#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftms {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ConfidenceHalfWidth95(), 0.0);
}

TEST(StreamingStatsTest, MeanVarianceExtremes) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(StreamingStatsTest, MergeMatchesCombinedStream) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, ConfidenceShrinksWithSamples) {
  StreamingStats small;
  StreamingStats large;
  for (int i = 0; i < 10; ++i) small.Add(i % 3);
  for (int i = 0; i < 1000; ++i) large.Add(i % 3);
  EXPECT_GT(small.ConfidenceHalfWidth95(), large.ConfidenceHalfWidth95());
}

TEST(HistogramTest, QuantilesOfUniformFill) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90, 1.5);
  EXPECT_EQ(h.count(), 100);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0, 10, 10);
  h.Add(-5);
  h.Add(25);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.buckets().front(), 1);
  EXPECT_EQ(h.buckets().back(), 1);
}

TEST(StreamingStatsTest, MergeWithEmptyOperands) {
  StreamingStats filled;
  for (int i = 1; i <= 4; ++i) filled.Add(i);
  const double mean = filled.mean();
  const double var = filled.variance();

  // empty.Merge(filled) adopts the filled stream wholesale.
  StreamingStats empty;
  empty.Merge(filled);
  EXPECT_EQ(empty.count(), 4);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
  EXPECT_DOUBLE_EQ(empty.variance(), var);
  EXPECT_EQ(empty.min(), 1.0);
  EXPECT_EQ(empty.max(), 4.0);

  // filled.Merge(empty) is a no-op.
  StreamingStats untouched;
  filled.Merge(untouched);
  EXPECT_EQ(filled.count(), 4);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.variance(), var);

  // empty.Merge(empty) stays empty (and all accessors stay defined).
  StreamingStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.ConfidenceHalfWidth95(), 0.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  // Empty histogram: every quantile is lo().
  Histogram empty(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(1.0), 2.0);

  // Single bucket: quantiles interpolate linearly across [lo, hi).
  Histogram one(0.0, 1.0, 1);
  one.Add(0.3);
  one.Add(0.7);
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 1.0);

  // Out-of-range q clamps to [0, 1].
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);

  // Clamped out-of-range samples land in the edge buckets, so extreme
  // quantiles report the histogram bounds, not the raw values.
  Histogram clamped(0.0, 10.0, 10);
  clamped.Add(-100.0);
  clamped.Add(500.0);
  EXPECT_DOUBLE_EQ(clamped.Quantile(1.0), 10.0);
  EXPECT_GE(clamped.Quantile(0.0), 0.0);
}

TEST(TimeWeightedStatsTest, WeightsByDuration) {
  TimeWeightedStats s;
  s.Record(10.0, 1.0);
  s.Record(0.0, 9.0);
  EXPECT_DOUBLE_EQ(s.time_average(), 1.0);
  EXPECT_DOUBLE_EQ(s.peak(), 10.0);
  EXPECT_DOUBLE_EQ(s.total_time(), 10.0);
}

}  // namespace
}  // namespace ftms
