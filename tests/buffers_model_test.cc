#include "model/buffers.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(BuffersModelTest, PerStreamNormalCounts) {
  EXPECT_DOUBLE_EQ(BuffersPerStreamNormal(Scheme::kStreamingRaid, 5), 10.0);
  EXPECT_DOUBLE_EQ(BuffersPerStreamNormal(Scheme::kNonClustered, 5), 2.0);
  EXPECT_DOUBLE_EQ(BuffersPerStreamNormal(Scheme::kImprovedBandwidth, 5),
                   8.0);
  // SG: C(C+1)/2 tracks shared by C-1 staggered streams = 15/4.
  EXPECT_DOUBLE_EQ(BuffersPerStreamNormal(Scheme::kStaggeredGroup, 5),
                   3.75);
}

TEST(BuffersModelTest, Table2BufferTracks) {
  // Table 2 (C = 5): SR 10410, SG 3623, NC 2612, IB 10104.
  SystemParameters p;
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kStreamingRaid, 5).value(), 10410.0);
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kStaggeredGroup, 5).value(), 3623.0);
  EXPECT_DOUBLE_EQ(TotalBufferTracks(p, Scheme::kNonClustered, 5).value(),
                   2612.0);
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kImprovedBandwidth, 5).value(),
      10104.0);
}

TEST(BuffersModelTest, Table3BufferTracks) {
  // Table 3 (C = 7): SR 15750, SG 4830, NC 3254, IB 15276.
  SystemParameters p;
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kStreamingRaid, 7).value(), 15750.0);
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kStaggeredGroup, 7).value(), 4830.0);
  EXPECT_DOUBLE_EQ(TotalBufferTracks(p, Scheme::kNonClustered, 7).value(),
                   3254.0);
  EXPECT_DOUBLE_EQ(
      TotalBufferTracks(p, Scheme::kImprovedBandwidth, 7).value(),
      15276.0);
}

TEST(BuffersModelTest, OrderingMatchesPaper) {
  // NC < SG << IB < SR at both table sizes: the memory ranking that
  // motivates Sections 3 and 4.
  SystemParameters p;
  for (int c : {5, 7}) {
    const double sr =
        TotalBufferTracks(p, Scheme::kStreamingRaid, c).value();
    const double sg =
        TotalBufferTracks(p, Scheme::kStaggeredGroup, c).value();
    const double nc =
        TotalBufferTracks(p, Scheme::kNonClustered, c).value();
    const double ib =
        TotalBufferTracks(p, Scheme::kImprovedBandwidth, c).value();
    EXPECT_LT(nc, sg);
    EXPECT_LT(sg, ib);
    EXPECT_LT(ib, sr);
  }
}

TEST(BuffersModelTest, SgSavesRoughlyHalfVersusSrPerStream) {
  // Section 2: Staggered-group needs about half the memory of Streaming
  // RAID (per stream: C(C+1)/2/(C-1) vs 2C -> ratio ~ (C+1)/(4(C-1))...
  // ~0.31-0.38 for practical C; "approximately 1/2" counting their
  // coarser accounting). Verify the ratio is between 0.25 and 0.55.
  for (int c : {4, 5, 7, 10}) {
    const double ratio =
        BuffersPerStreamNormal(Scheme::kStaggeredGroup, c) /
        BuffersPerStreamNormal(Scheme::kStreamingRaid, c);
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 0.55);
  }
}

TEST(BuffersModelTest, MbConversion) {
  SystemParameters p;
  EXPECT_DOUBLE_EQ(TotalBufferMb(p, Scheme::kStreamingRaid, 5).value(),
                   10410.0 * 0.05);
}

TEST(BuffersModelTest, RejectsTinyGroups) {
  SystemParameters p;
  EXPECT_FALSE(TotalBufferTracks(p, Scheme::kStreamingRaid, 1).ok());
}

}  // namespace
}  // namespace ftms
