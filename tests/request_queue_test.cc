#include "stream/request_queue.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

StreamRequest Req(int object_id, double arrival_s) {
  StreamRequest r;
  r.object_id = object_id;
  r.arrival_s = arrival_s;
  return r;
}

TEST(RequestQueueTest, FifoOrder) {
  RequestQueue queue;
  queue.Enqueue(Req(1, 0), 0);
  queue.Enqueue(Req(2, 1), 1);
  queue.Enqueue(Req(3, 2), 2);
  StreamRequest out;
  ASSERT_TRUE(queue.Dequeue(5, &out));
  EXPECT_EQ(out.object_id, 1);
  ASSERT_TRUE(queue.Dequeue(5, &out));
  EXPECT_EQ(out.object_id, 2);
  ASSERT_TRUE(queue.Dequeue(5, &out));
  EXPECT_EQ(out.object_id, 3);
  EXPECT_FALSE(queue.Dequeue(5, &out));
}

TEST(RequestQueueTest, WaitStatsRecorded) {
  RequestQueue queue;
  queue.Enqueue(Req(1, 0), 0);
  queue.Enqueue(Req(2, 0), 0);
  StreamRequest out;
  queue.Dequeue(10, &out);
  queue.Dequeue(30, &out);
  EXPECT_EQ(queue.wait_stats().count(), 2);
  EXPECT_DOUBLE_EQ(queue.wait_stats().mean(), 20.0);
  EXPECT_DOUBLE_EQ(queue.wait_stats().max(), 30.0);
}

TEST(RequestQueueTest, ImpatientViewersRenege) {
  RequestQueue queue(/*patience_s=*/60.0);
  queue.Enqueue(Req(1, 0), 0);
  queue.Enqueue(Req(2, 0), 50);
  StreamRequest out;
  // At t=100 the first viewer (waited 100 s) reneged; the second
  // (waited 50 s) is still there.
  ASSERT_TRUE(queue.Dequeue(100, &out));
  EXPECT_EQ(out.object_id, 2);
  EXPECT_EQ(queue.reneged_total(), 1);
  EXPECT_EQ(queue.enqueued_total(), 2);
}

TEST(RequestQueueTest, ExpireWithoutDequeue) {
  RequestQueue queue(10.0);
  queue.Enqueue(Req(1, 0), 0);
  queue.ExpireReneged(100);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.reneged_total(), 1);
}

TEST(RequestQueueTest, PeekDoesNotRemove) {
  RequestQueue queue(10.0);
  queue.Enqueue(Req(1, 0), 0);
  queue.Enqueue(Req(2, 0), 15);
  // At t=20 the first request (waited 20 s) reneged; the second (5 s)
  // is still viable and Peek surfaces it.
  const StreamRequest* head = queue.Peek(20);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->object_id, 2);
  EXPECT_EQ(queue.size(), 1u);
  StreamRequest out;
  ASSERT_TRUE(queue.Dequeue(20, &out));
  EXPECT_EQ(out.object_id, 2);
  EXPECT_EQ(queue.Peek(20), nullptr);
}

TEST(RequestQueueTest, InfinitePatienceByDefault) {
  RequestQueue queue;
  queue.Enqueue(Req(1, 0), 0);
  StreamRequest out;
  ASSERT_TRUE(queue.Dequeue(1e9, &out));
  EXPECT_EQ(queue.reneged_total(), 0);
}

}  // namespace
}  // namespace ftms
