#include <gtest/gtest.h>

#include "sched/improved_bandwidth_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// C = 2 under the Improved-bandwidth layout IS mirroring / chained
// declustering (paper footnote 11 and reference [5]): the "parity" block
// of a one-track group is a copy on the right-hand neighbor disk.

RigOptions MirrorOptions(bool balance, int slots) {
  RigOptions options;
  options.ib_mirror_read_balance = balance;
  options.slots_per_disk = slots;
  return options;
}

TEST(MirroringTest, CopyServesReadsWhenPrimaryFails) {
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, 2, 8,
                         MirrorOptions(false, 0));
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(200);
  EXPECT_EQ(rig.sched->FindStream(id)->state(), StreamState::kCompleted);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);  // copy reads
}

TEST(MirroringTest, ReadBalancingDoublesHotTitleCapacity) {
  // The copies do not add raw slots — they let a HOT title's load split
  // across two disks (the classic chained-declustering gain, reference
  // [5]). Two viewers of the same title bunch on one disk per cycle:
  // with 1 slot/disk the second viewer's read drops every cycle without
  // balancing, and never with it.
  constexpr int kDisks = 8;
  SchedRig plain = MakeRig(Scheme::kImprovedBandwidth, 2, kDisks,
                           MirrorOptions(false, 1));
  SchedRig balanced = MakeRig(Scheme::kImprovedBandwidth, 2, kDisks,
                              MirrorOptions(true, 1));
  for (SchedRig* rig : {&plain, &balanced}) {
    rig->sched->AddStream(TestObject(0, 64)).value();
    rig->sched->AddStream(TestObject(0, 64)).value();
    rig->sched->RunCycles(80);
  }
  EXPECT_GT(plain.sched->metrics().hiccups, 0);
  EXPECT_EQ(balanced.sched->metrics().hiccups, 0);
  EXPECT_EQ(balanced.sched->metrics().dropped_reads, 0);
  // Every spilled read was served from the copy.
  EXPECT_GT(balanced.sched->metrics().parity_reads, 0);
  for (const auto& s : balanced.sched->streams()) {
    EXPECT_EQ(s->state(), StreamState::kCompleted);
  }
}

TEST(MirroringTest, FootnoteCaveatFailureDropsBalancedStreams) {
  // "This can however lead to trouble when there is a failure since some
  // streams would have to be dropped": with both copies of the hot disk
  // in use, a failure leaves only one copy for two viewers.
  constexpr int kDisks = 8;
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, 2, kDisks,
                         MirrorOptions(true, 1));
  rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->RunCycles(5);
  EXPECT_EQ(rig.sched->metrics().hiccups, 0);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(40);  // the pair sweeps over the failed disk
  EXPECT_GT(rig.sched->metrics().hiccups +
                rig.sched->metrics().degradation_events,
            0);
}

TEST(MirroringTest, BalancingRequiresGroupSizeTwo) {
  // The spill path is inert for C > 2 (parity is not a copy there).
  RigOptions options = MirrorOptions(true, 1);
  SchedRig rig = MakeRig(Scheme::kImprovedBandwidth, 5, 8, options);
  for (int i = 0; i < 4; ++i) {
    rig.sched->AddStream(TestObject(i % 2, 400)).value();
  }
  rig.sched->RunCycles(10);
  // Over-subscribed C=5 groups drop reads as usual.
  SchedRig crowded = MakeRig(Scheme::kImprovedBandwidth, 5, 8, options);
  for (int i = 0; i < 8; ++i) {
    crowded.sched->AddStream(TestObject(i % 2, 400)).value();
  }
  crowded.sched->RunCycles(10);
  EXPECT_GT(crowded.sched->metrics().dropped_reads, 0);
}

}  // namespace
}  // namespace ftms
