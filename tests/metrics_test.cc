#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace ftms {
namespace {

TEST(MetricsNamesTest, LabeledName) {
  EXPECT_EQ(LabeledName("ftms_reads_total", {}), "ftms_reads_total");
  EXPECT_EQ(LabeledName("ftms_reads_total", {{"scheme", "SR"}}),
            "ftms_reads_total{scheme=\"SR\"}");
  EXPECT_EQ(
      LabeledName("f", {{"a", "1"}, {"b", "2"}}),
      "f{a=\"1\",b=\"2\"}");
  EXPECT_EQ(IndexedName("ftms_disk_busy", "disk", 7),
            "ftms_disk_busy{disk=\"7\"}");
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ftms_a_total");
  Counter* again = registry.GetCounter("ftms_a_total");
  EXPECT_EQ(a, again);
  a->Add(3);
  a->Add();
  EXPECT_EQ(a->value(), 4);
  EXPECT_EQ(registry.size(), 1u);

  // Same name with a different kind is a registration error -> null.
  EXPECT_EQ(registry.GetGauge("ftms_a_total"), nullptr);
  EXPECT_EQ(registry.GetHistogram("ftms_a_total", 0, 1, 4), nullptr);
  EXPECT_EQ(registry.FindGauge("ftms_a_total"), nullptr);
  ASSERT_NE(registry.FindCounter("ftms_a_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("ftms_a_total")->value(), 4);
  EXPECT_EQ(registry.FindCounter("ftms_missing"), nullptr);
}

TEST(MetricsRegistryTest, GaugeAndHistogram) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("ftms_g");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.FindGauge("ftms_g")->value(), 2.5);

  HistogramCell* h = registry.GetHistogram("ftms_h", 0.0, 10.0, 10);
  ASSERT_NE(h, nullptr);
  h->Add(0.5);
  h->Add(5.5);
  h->Add(999.0);  // clamps into the last bucket
  h->Add(-3.0);   // clamps into the first bucket
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->bucket(0), 2);
  EXPECT_EQ(h->bucket(5), 1);
  EXPECT_EQ(h->bucket(9), 1);
  EXPECT_DOUBLE_EQ(h->bucket_upper(9), 10.0);
}

TEST(MetricsRegistryTest, ShardedCounterFoldsAllCells) {
  MetricsRegistry registry;
  ShardedCounter* c = registry.GetShardedCounter("ftms_sharded_total");
  for (int shard = 0; shard < 40; ++shard) c->Add(shard, 2);
  EXPECT_EQ(c->value(), 80);
}

TEST(MetricsRegistryTest, CounterAddsAreThreadCountInvariant) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ftms_conc_total");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < 10000; ++i) c->Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), 40000);
}

TEST(MetricsRegistryTest, PrometheusText) {
  MetricsRegistry registry;
  registry.GetCounter(LabeledName("ftms_reads_total", {{"scheme", "SR"}}),
                      "reads issued")->Add(7);
  registry.GetGauge("ftms_streams")->Set(3);
  registry.GetHistogram("ftms_lat_us", 0.0, 4.0, 2)->Add(1.0);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE ftms_reads_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP ftms_reads_total reads issued"),
            std::string::npos);
  EXPECT_NE(text.find("ftms_reads_total{scheme=\"SR\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ftms_streams gauge"), std::string::npos);
  EXPECT_NE(text.find("ftms_streams 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ftms_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("ftms_lat_us_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ftms_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ftms_lat_us_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonObject) {
  MetricsRegistry registry;
  registry.GetCounter("ftms_b_total")->Add(2);
  registry.GetCounter(LabeledName("ftms_l_total", {{"scheme", "SR"}}))->Add(3);
  registry.GetHistogram("ftms_h", 0.0, 4.0, 4)->Add(1.5);
  const std::string json = registry.JsonObject("  ", "");
  EXPECT_NE(json.find("\"ftms_b_total\": 2"), std::string::npos);
  // Label quotes are escaped so the object stays parseable JSON.
  EXPECT_NE(json.find("\"ftms_l_total{scheme=\\\"SR\\\"}\": 3"),
            std::string::npos);
  EXPECT_EQ(json.find("{scheme=\"SR\"}\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ftms_h_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ftms_h_p50\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  MetricsRegistry empty;
  EXPECT_EQ(empty.JsonObject(), "{}");
}

TEST(MetricsRegistryTest, WritePrometheusFile) {
  MetricsRegistry registry;
  registry.GetCounter("ftms_c_total")->Add(1);
  const std::string path = "/tmp/ftms_metrics_test.prom";
  ASSERT_TRUE(registry.WritePrometheusFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(registry.WritePrometheusFile("/nonexistent/dir/x.prom").ok());
}

TEST(MetricsRegistryTest, GlobalToggle) {
  // The suite never sets FTMS_METRICS, so the global starts disabled;
  // restore that state to stay hermetic.
  EXPECT_EQ(MetricsRegistry::GlobalIfEnabled(), nullptr);
  MetricsRegistry::SetGlobalEnabled(true);
  ASSERT_NE(MetricsRegistry::GlobalIfEnabled(), nullptr);
  EXPECT_EQ(MetricsRegistry::GlobalIfEnabled(), &MetricsRegistry::Global());
  MetricsRegistry::SetGlobalEnabled(false);
  EXPECT_EQ(MetricsRegistry::GlobalIfEnabled(), nullptr);
}

}  // namespace
}  // namespace ftms
