#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(BufferPoolTest, UnlimitedPoolMeasuresPeak) {
  BufferPool pool(0);
  EXPECT_TRUE(pool.unlimited());
  EXPECT_TRUE(pool.Acquire(100).ok());
  EXPECT_TRUE(pool.Acquire(50).ok());
  pool.Release(120);
  EXPECT_EQ(pool.in_use(), 30);
  EXPECT_EQ(pool.peak_in_use(), 150);
}

TEST(BufferPoolTest, BoundedPoolRejectsOverflow) {
  BufferPool pool(10);
  EXPECT_TRUE(pool.Acquire(7).ok());
  EXPECT_EQ(pool.Acquire(4).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.in_use(), 7);  // failed acquire reserves nothing
  EXPECT_EQ(pool.failed_acquires(), 1);
  EXPECT_TRUE(pool.Acquire(3).ok());
  pool.Release(10);
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(BufferPoolTest, ResetPeak) {
  BufferPool pool(0);
  pool.Acquire(100).ok();
  pool.Release(100);
  pool.ResetPeak();
  EXPECT_EQ(pool.peak_in_use(), 0);
}

TEST(BufferPoolTest, ShardDeltaTracksNetAndRunningPeak) {
  BufferPool::ShardDelta shard;
  EXPECT_TRUE(shard.empty());
  shard.Acquire(5);
  shard.Release(2);
  shard.Acquire(4);  // running net 7 = new peak
  shard.Release(7);
  EXPECT_EQ(shard.net(), 0);
  EXPECT_EQ(shard.peak(), 7);
  EXPECT_FALSE(shard.empty());  // a nonzero peak is still information
  shard.Reset();
  EXPECT_TRUE(shard.empty());
}

TEST(BufferPoolTest, AccumulateShardMatchesInlineExecution) {
  // Two shards of one cycle, folded in cluster order, must land on the
  // same occupancy and peak as running their traffic inline.
  BufferPool inline_pool(0);
  EXPECT_TRUE(inline_pool.Acquire(10).ok());  // shard 0
  EXPECT_TRUE(inline_pool.Acquire(25).ok());  // shard 1
  inline_pool.Release(5);

  BufferPool sharded(0);
  BufferPool::ShardDelta s0;
  BufferPool::ShardDelta s1;
  s0.Acquire(10);
  s1.Acquire(25);
  EXPECT_TRUE(sharded.AccumulateShard(s0).ok());
  EXPECT_TRUE(sharded.AccumulateShard(s1).ok());
  sharded.Release(5);
  EXPECT_EQ(sharded.in_use(), inline_pool.in_use());
  EXPECT_EQ(sharded.peak_in_use(), inline_pool.peak_in_use());
}

TEST(BufferPoolTest, AccumulateShardAppliesPeakOverCurrentOccupancy) {
  BufferPool pool(0);
  EXPECT_TRUE(pool.Acquire(100).ok());
  BufferPool::ShardDelta shard;
  shard.Acquire(40);
  shard.Release(40);  // net 0, but the shard transiently held 40
  EXPECT_TRUE(pool.AccumulateShard(shard).ok());
  EXPECT_EQ(pool.in_use(), 100);
  EXPECT_EQ(pool.peak_in_use(), 140);
}

TEST(BufferPoolTest, AccumulateShardRespectsFiniteCapacity) {
  BufferPool pool(50);
  EXPECT_TRUE(pool.Acquire(30).ok());
  BufferPool::ShardDelta shard;
  shard.Acquire(25);
  EXPECT_EQ(pool.AccumulateShard(shard).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.in_use(), 30);  // failed fold applies nothing
  shard.Reset();
  shard.Acquire(20);
  EXPECT_TRUE(pool.AccumulateShard(shard).ok());
  EXPECT_EQ(pool.in_use(), 50);
}

TEST(BufferServerPoolTest, ServesUpToKClusters) {
  // Section 3: K shared buffer servers; the (K+1)-st failed cluster finds
  // the pool empty -> degradation of service.
  BufferServerPool servers(2, 100);
  EXPECT_TRUE(servers.AttachToCluster(3).ok());
  EXPECT_TRUE(servers.AttachToCluster(7).ok());
  EXPECT_TRUE(servers.IsAttached(3));
  EXPECT_EQ(servers.servers_in_use(), 2);
  EXPECT_EQ(servers.AttachToCluster(9).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(servers.exhausted_count(), 1);

  // A repaired cluster releases its server for the waiting one.
  EXPECT_TRUE(servers.DetachFromCluster(3).ok());
  EXPECT_FALSE(servers.IsAttached(3));
  EXPECT_TRUE(servers.AttachToCluster(9).ok());
}

TEST(BufferServerPoolTest, DoubleAttachRejected) {
  BufferServerPool servers(2, 100);
  EXPECT_TRUE(servers.AttachToCluster(1).ok());
  EXPECT_EQ(servers.AttachToCluster(1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(servers.DetachFromCluster(5).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ftms
