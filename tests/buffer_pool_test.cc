#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(BufferPoolTest, UnlimitedPoolMeasuresPeak) {
  BufferPool pool(0);
  EXPECT_TRUE(pool.unlimited());
  EXPECT_TRUE(pool.Acquire(100).ok());
  EXPECT_TRUE(pool.Acquire(50).ok());
  pool.Release(120);
  EXPECT_EQ(pool.in_use(), 30);
  EXPECT_EQ(pool.peak_in_use(), 150);
}

TEST(BufferPoolTest, BoundedPoolRejectsOverflow) {
  BufferPool pool(10);
  EXPECT_TRUE(pool.Acquire(7).ok());
  EXPECT_EQ(pool.Acquire(4).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.in_use(), 7);  // failed acquire reserves nothing
  EXPECT_EQ(pool.failed_acquires(), 1);
  EXPECT_TRUE(pool.Acquire(3).ok());
  pool.Release(10);
  EXPECT_EQ(pool.in_use(), 0);
}

TEST(BufferPoolTest, ResetPeak) {
  BufferPool pool(0);
  pool.Acquire(100).ok();
  pool.Release(100);
  pool.ResetPeak();
  EXPECT_EQ(pool.peak_in_use(), 0);
}

TEST(BufferServerPoolTest, ServesUpToKClusters) {
  // Section 3: K shared buffer servers; the (K+1)-st failed cluster finds
  // the pool empty -> degradation of service.
  BufferServerPool servers(2, 100);
  EXPECT_TRUE(servers.AttachToCluster(3).ok());
  EXPECT_TRUE(servers.AttachToCluster(7).ok());
  EXPECT_TRUE(servers.IsAttached(3));
  EXPECT_EQ(servers.servers_in_use(), 2);
  EXPECT_EQ(servers.AttachToCluster(9).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(servers.exhausted_count(), 1);

  // A repaired cluster releases its server for the waiting one.
  EXPECT_TRUE(servers.DetachFromCluster(3).ok());
  EXPECT_FALSE(servers.IsAttached(3));
  EXPECT_TRUE(servers.AttachToCluster(9).ok());
}

TEST(BufferServerPoolTest, DoubleAttachRejected) {
  BufferServerPool servers(2, 100);
  EXPECT_TRUE(servers.AttachToCluster(1).ok());
  EXPECT_EQ(servers.AttachToCluster(1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(servers.DetachFromCluster(5).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ftms
