#include "sched/staggered_group_scheduler.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kDisks = 10;

TEST(StaggeredGroupTest, DeliversOneTrackPerCycle) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycle();  // read cycle (phase 0 stream reads immediately)
  EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), 0);
  for (int i = 1; i <= 8; ++i) {
    rig.sched->RunCycle();
    EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), i);
  }
}

TEST(StaggeredGroupTest, CompletesObjectWithoutFailures) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(20);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks(), 16);
  EXPECT_EQ(s->hiccup_count(), 0);
}

TEST(StaggeredGroupTest, GroupReadEveryCMinusOneCycles) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(1);
  // First read cycle: the whole group (4 data + 1 parity) at once.
  EXPECT_EQ(rig.sched->metrics().data_reads, 4);
  EXPECT_EQ(rig.sched->metrics().parity_reads, 1);
  rig.sched->RunCycles(3);
  // No further reads until the next read cycle.
  EXPECT_EQ(rig.sched->metrics().data_reads, 4);
  rig.sched->RunCycles(1);
  EXPECT_EQ(rig.sched->metrics().data_reads, 8);
}

TEST(StaggeredGroupTest, PhasesAreStaggered) {
  // Streams admitted back to back land on different read phases, which is
  // what keeps their memory peaks out of phase (Figure 4).
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  for (int i = 0; i < 4; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 400)).value();
  }
  rig.sched->RunCycles(1);
  // Only the phase-0 stream read its group in cycle 0.
  EXPECT_EQ(rig.sched->metrics().data_reads, 4);
  rig.sched->RunCycles(1);
  EXPECT_EQ(rig.sched->metrics().data_reads, 8);
}

TEST(StaggeredGroupTest, MemoryRoughlyHalfOfStreamingRaid) {
  // The headline claim of the Staggered-group scheme (Section 2).
  SchedRig sg = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  SchedRig sr = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  for (int i = 0; i < 8; ++i) {
    sg.sched->AddStream(TestObject(2 * i, 400)).value();
    sr.sched->AddStream(TestObject(2 * i, 400)).value();
  }
  sg.sched->RunCycles(40);
  sr.sched->RunCycles(10);
  const double ratio =
      static_cast<double>(sg.sched->buffer_pool().peak_in_use()) /
      static_cast<double>(sr.sched->buffer_pool().peak_in_use());
  EXPECT_LT(ratio, 0.6);
  EXPECT_GT(ratio, 0.3);
}

TEST(StaggeredGroupTest, SteadyStateBufferMatchesEquation13) {
  // C-1 streams in staggered phases hold ~C(C+1)/2 tracks total
  // (equation (13)). Our accounting holds each track through the cycle
  // in which it is transmitted (the overlap read cycle therefore counts
  // the old group's tail and parity alongside the C new tracks), adding
  // C-1 tracks to the paper's count: C(C+1)/2 + (C-1) = 19 for C = 5.
  // The sawtooth phase profile (7, 5, 4, 3) is exactly Figure 4's shape.
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  for (int i = 0; i < kC - 1; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 400)).value();
  }
  rig.sched->RunCycles(20);
  const int64_t expected = kC * (kC + 1) / 2 + (kC - 1);
  EXPECT_EQ(rig.sched->buffer_pool().peak_in_use(), expected);
}

TEST(StaggeredGroupTest, SingleFailureMaskedNoHiccups) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(3);
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  rig.sched->RunCycles(80);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 0);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
}

TEST(StaggeredGroupTest, MidCycleFailureAlsoMasked) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycles(1);
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
  rig.sched->RunCycles(80);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(StaggeredGroupTest, DoubleFailureCausesHiccups) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->OnDiskFailed(0, false);
  rig.sched->OnDiskFailed(3, false);
  rig.sched->RunCycles(80);
  EXPECT_GT(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(StaggeredGroupTest, ShortObjectCompletes) {
  SchedRig rig = MakeRig(Scheme::kStaggeredGroup, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 3)).value();
  rig.sched->RunCycles(8);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks(), 3);
}

}  // namespace
}  // namespace ftms
