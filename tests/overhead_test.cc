#include "model/overhead.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(OverheadTest, StorageIsOneOverCForAllSchemes) {
  // Tables 2/3: 20.0% at C = 5, 14.3% at C = 7, for every scheme.
  for (Scheme scheme : kAllSchemes) {
    EXPECT_DOUBLE_EQ(StorageOverheadFraction(scheme, 5), 0.2);
    EXPECT_NEAR(StorageOverheadFraction(scheme, 7), 0.143, 0.001);
  }
}

TEST(OverheadTest, StorageMbScalesWithFarm) {
  SystemParameters p;  // D = 100 x 1000 MB
  EXPECT_DOUBLE_EQ(StorageOverheadMb(p, Scheme::kStreamingRaid, 5),
                   20000.0);
}

TEST(OverheadTest, BandwidthDedicatedParitySchemes) {
  SystemParameters p;
  for (Scheme scheme : {Scheme::kStreamingRaid, Scheme::kStaggeredGroup,
                        Scheme::kNonClustered}) {
    EXPECT_DOUBLE_EQ(BandwidthOverheadFraction(p, scheme, 5), 0.2);
    EXPECT_NEAR(BandwidthOverheadFraction(p, scheme, 7), 0.143, 0.001);
  }
}

TEST(OverheadTest, BandwidthImprovedIsReserveOverD) {
  // IB reserves only K disks' worth of bandwidth (equation (3)): with the
  // tables' K = 3 and D = 100 that is 3%; with the text's K = 5, 5%.
  SystemParameters p;
  EXPECT_DOUBLE_EQ(
      BandwidthOverheadFraction(p, Scheme::kImprovedBandwidth, 5), 0.03);
  p.k_reserve = 5;
  EXPECT_DOUBLE_EQ(
      BandwidthOverheadFraction(p, Scheme::kImprovedBandwidth, 5), 0.05);
}

TEST(OverheadTest, BandwidthMbS) {
  SystemParameters p;  // 100 disks x 2.5 MB/s = 250 MB/s aggregate
  EXPECT_NEAR(BandwidthOverheadMbS(p, Scheme::kStreamingRaid, 5), 50.0,
              1e-9);
  EXPECT_NEAR(BandwidthOverheadMbS(p, Scheme::kImprovedBandwidth, 5), 7.5,
              1e-9);
}

}  // namespace
}  // namespace ftms
