#include "util/trace_event.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/metrics.h"

namespace ftms {
namespace {

TEST(TracerTest, RecordsSpansAndInstantsInTimestampOrder) {
  Tracer tracer(16);
  const int32_t tid = tracer.RegisterTrack("sched SR #0");
  tracer.Complete("cycle", "sched", tid, 1000, 500, "streams", 3);
  tracer.Instant("disk_failed", "failure", tid, 1200, "disk", 4);
  tracer.Complete("cycle", "sched", tid, 0, 500);

  ASSERT_EQ(tracer.size(), 3u);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_us, 0);
  EXPECT_EQ(events[1].ts_us, 1000);
  EXPECT_EQ(events[2].ts_us, 1200);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].dur_us, 500);
  EXPECT_STREQ(events[2].name, "disk_failed");
  EXPECT_EQ(events[2].phase, 'i');
  EXPECT_GE(events[1].wall_us, 0);
}

TEST(TracerTest, RingOverwritesOldest) {
  Tracer tracer(4);
  const int32_t tid = tracer.RegisterTrack("t");
  for (int i = 0; i < 6; ++i) {
    tracer.Instant("e", "c", tid, i * 10);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.overwritten(), 2);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest events (ts 0, 10) were dropped.
  EXPECT_EQ(events.front().ts_us, 20);
  EXPECT_EQ(events.back().ts_us, 50);

  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.overwritten(), 0);
}

TEST(TracerTest, OverflowPublishesDroppedCounterAndFooter) {
  // Ring overflow is observable two ways: the ftms_trace_dropped_total
  // counter (when the global registry is live) and the "dropped" field
  // in the trace JSON footer — so a truncated trace is never mistaken
  // for a complete one.
  MetricsRegistry::SetGlobalEnabled(true);
  Counter* dropped = MetricsRegistry::Global().GetCounter(
      "ftms_trace_dropped_total", "trace events lost to ring wrap-around");
  const int64_t before = dropped->value();

  Tracer tracer(4);
  const int32_t tid = tracer.RegisterTrack("t");
  for (int i = 0; i < 7; ++i) {
    tracer.Instant("e", "c", tid, i * 10);
  }
  EXPECT_EQ(tracer.overwritten(), 3);
  EXPECT_EQ(dropped->value() - before, 3);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"dropped\": 3"), std::string::npos);
  MetricsRegistry::SetGlobalEnabled(false);
}

TEST(TracerTest, NoOverflowMeansZeroDroppedInFooter) {
  Tracer tracer(8);
  const int32_t tid = tracer.RegisterTrack("t");
  tracer.Instant("e", "c", tid, 5);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer tracer(16);
  const int32_t tid = tracer.RegisterTrack("rebuild");
  tracer.Complete("rebuild", "rebuild", tid, 100, 900, "disk", 2, "cycles",
                  9);
  tracer.Instant("rebuild_start", "rebuild", tid, 100, "disk", 2);

  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rebuild\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 900"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"disk\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"clock\": \"sim_us\""), std::string::npos);
}

TEST(TracerTest, WriteChromeJsonRoundTrip) {
  Tracer tracer(8);
  const int32_t tid = tracer.RegisterTrack("t");
  tracer.Instant("e", "c", tid, 5);
  const std::string path = "/tmp/ftms_trace_event_test.json";
  ASSERT_TRUE(tracer.WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(tracer.WriteChromeJson("/nonexistent/dir/x.json").ok());
}

TEST(TracerTest, GlobalToggle) {
  EXPECT_EQ(Tracer::GlobalIfEnabled(), nullptr);
  Tracer::SetGlobalEnabled(true);
  ASSERT_NE(Tracer::GlobalIfEnabled(), nullptr);
  EXPECT_EQ(Tracer::GlobalIfEnabled(), &Tracer::Global());
  Tracer::SetGlobalEnabled(false);
  EXPECT_EQ(Tracer::GlobalIfEnabled(), nullptr);
}

}  // namespace
}  // namespace ftms
