#include "sched/non_clustered_scheduler.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kDisks = 10;  // two clusters

RigOptions NcOptions(NcTransition transition, int slots = 0,
                     int servers = 3) {
  RigOptions options;
  options.nc_transition = transition;
  options.slots_per_disk = slots;
  options.buffer_servers = servers;
  return options;
}

TEST(NonClusteredTest, DeliversOneTrackPerCycleTwoBuffers) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks,
                         NcOptions(NcTransition::kDeferredRead));
  const StreamId id = rig.sched->AddStream(TestObject(0, 12)).value();
  rig.sched->RunCycle();  // startup read
  for (int i = 1; i <= 12; ++i) {
    rig.sched->RunCycle();
    EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), i);
  }
  EXPECT_EQ(rig.sched->FindStream(id)->state(), StreamState::kCompleted);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
  // Normal mode: no parity is ever read, and the stream holds at most
  // 2 buffers (equation (14)).
  EXPECT_EQ(rig.sched->metrics().parity_reads, 0);
  EXPECT_LE(rig.sched->buffer_pool().peak_in_use(), 2);
}

TEST(NonClusteredTest, BufferPeakIsTwoPerStream) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks,
                         NcOptions(NcTransition::kDeferredRead));
  for (int i = 0; i < 6; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 200)).value();
  }
  rig.sched->RunCycles(30);
  EXPECT_EQ(rig.sched->buffer_pool().peak_in_use(), 12);
}

// The canonical transition scenario of Figures 5-7: streams staggered at
// group positions 0..3 on cluster 0 when its disk 2 (position 2) fails,
// with a fresh stream entering the cluster each subsequent cycle, and one
// read slot per disk per cycle.
class NcTransitionScenario {
 public:
  explicit NcTransitionScenario(NcTransition transition)
      : rig_(MakeRig(Scheme::kNonClustered, kC, kDisks,
                     NcOptions(transition, /*slots=*/1))) {}

  // Returns total hiccups after the scripted failure drill.
  int64_t Run() {
    // Streams U, W, Y reach positions 3, 2, 1 of group 0 by cycle 3.
    AddStream();                 // U (object 0)
    rig_.sched->RunCycle();      // cycle 0
    AddStream();                 // W (object 2)
    rig_.sched->RunCycle();      // cycle 1
    AddStream();                 // Y (object 4)
    rig_.sched->RunCycle();      // cycle 2
    // Disk 2 of cluster 0 fails just before cycle 3; stream A enters.
    rig_.sched->OnDiskFailed(2, /*mid_cycle=*/false);
    AddStream();                 // A (object 6)
    rig_.sched->RunCycle();      // cycle 3
    AddStream();                 // C (object 8)
    rig_.sched->RunCycle();      // cycle 4
    AddStream();                 // E (object 10)
    rig_.sched->RunCycle();      // cycle 5
    AddStream();                 // G (object 12)
    rig_.sched->RunCycle();      // cycle 6
    rig_.sched->RunCycles(20);   // drain all objects (8 tracks each)
    return rig_.sched->metrics().hiccups;
  }

  CycleScheduler& sched() { return *rig_.sched; }
  const Stream* stream(int index) {
    return rig_.sched->FindStream(index);
  }

 private:
  void AddStream() {
    // Objects with even ids have home cluster 0 (two clusters).
    rig_.sched->AddStream(TestObject(2 * next_object_++, 8)).value();
  }

  SchedRig rig_;
  int next_object_ = 0;
};

TEST(NonClusteredTest, ImmediateShiftLosesSixTracks) {
  // Figure 6: Y1, Y2, Y3, W2, W3, U3 are lost — the paper's
  // 1 + 2 + ... + (C-k) = 6 switchover+failure losses for C=5.
  NcTransitionScenario scenario(NcTransition::kImmediateShift);
  EXPECT_EQ(scenario.Run(), 6);
  // Per stream: U loses 1, W loses 2, Y loses 3; A and later entrants
  // reconstruct on the fly and lose nothing.
  EXPECT_EQ(scenario.stream(0)->hiccup_count(), 1);  // U
  EXPECT_EQ(scenario.stream(1)->hiccup_count(), 2);  // W
  EXPECT_EQ(scenario.stream(2)->hiccup_count(), 3);  // Y
  EXPECT_EQ(scenario.stream(3)->hiccup_count(), 0);  // A
  EXPECT_EQ(scenario.stream(4)->hiccup_count(), 0);  // C
  EXPECT_GE(scenario.sched().metrics().reconstructed, 4);
}

TEST(NonClusteredTest, DeferredReadLosesOnlyThreeTracks) {
  // Figure 7: only Y2 and W2 (unreconstructable: their prefixes were
  // delivered before the failure) and Y3 (displaced by the deferred
  // just-in-time group read) are lost.
  NcTransitionScenario scenario(NcTransition::kDeferredRead);
  EXPECT_EQ(scenario.Run(), 3);
  EXPECT_EQ(scenario.stream(0)->hiccup_count(), 0);  // U keeps U3
  EXPECT_EQ(scenario.stream(1)->hiccup_count(), 1);  // W loses W2
  EXPECT_EQ(scenario.stream(2)->hiccup_count(), 2);  // Y loses Y2, Y3
  EXPECT_EQ(scenario.stream(3)->hiccup_count(), 0);  // A reconstructs
  EXPECT_GE(scenario.sched().metrics().reconstructed, 4);
}

TEST(NonClusteredTest, StreamAtGroupEntryIsLossless) {
  // A stream that has delivered nothing of its current group masks the
  // failure completely under either strategy (its whole group, parity
  // included, can still be staged — Observation 2).
  for (NcTransition transition :
       {NcTransition::kImmediateShift, NcTransition::kDeferredRead}) {
    SchedRig rig =
        MakeRig(Scheme::kNonClustered, kC, kDisks, NcOptions(transition));
    const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
    rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
    rig.sched->RunCycles(25);
    EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0)
        << "transition mode "
        << (transition == NcTransition::kImmediateShift ? "immediate"
                                                        : "deferred");
    EXPECT_GT(rig.sched->metrics().reconstructed, 0);
  }
}

TEST(NonClusteredTest, SteadyDegradedModeHasNoFurtherHiccups) {
  // "Once the transition to degraded mode is complete, all data will be
  // delivered according to the original schedule and no additional
  // hiccups will occur" (Section 3).
  NcTransitionScenario scenario(NcTransition::kDeferredRead);
  const int64_t after_drill = scenario.Run();
  // Start more streams into the still-degraded cluster; they must not
  // hiccup.
  scenario.sched().AddStream(TestObject(100, 8)).value();
  scenario.sched().RunCycles(15);
  EXPECT_EQ(scenario.sched().metrics().hiccups, after_drill);
}

TEST(NonClusteredTest, ParityDiskFailureIsInvisible) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks,
                         NcOptions(NcTransition::kDeferredRead));
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->OnDiskFailed(4, /*mid_cycle=*/false);  // dedicated parity
  rig.sched->RunCycles(20);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
  EXPECT_EQ(rig.sched->metrics().parity_reads, 0);
}

TEST(NonClusteredTest, WithoutBufferServersNothingReconstructs) {
  // K = 0 buffer servers: a failure immediately exhausts the pool, the
  // degraded cluster has no staging memory, and every pass over the
  // failed disk hiccups (degradation of service).
  SchedRig rig =
      MakeRig(Scheme::kNonClustered, kC, kDisks,
              NcOptions(NcTransition::kImmediateShift, 0, /*servers=*/0));
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  rig.sched->RunCycles(25);
  EXPECT_EQ(rig.sched->metrics().degradation_events, 1);
  EXPECT_EQ(rig.sched->metrics().reconstructed, 0);
  // Tracks 2 and 10 (position 2 of the two cluster-0 groups) are lost.
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 2);
}

TEST(NonClusteredTest, BufferServerPoolExhaustionCounted) {
  SchedRig rig =
      MakeRig(Scheme::kNonClustered, kC, kDisks,
              NcOptions(NcTransition::kDeferredRead, 0, /*servers=*/1));
  rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->OnDiskFailed(0, false);  // cluster 0: takes the only server
  rig.sched->OnDiskFailed(5, false);  // cluster 1: pool exhausted
  rig.sched->RunCycles(5);
  EXPECT_EQ(rig.sched->metrics().degradation_events, 1);
}

TEST(NonClusteredTest, RepairReturnsClusterToNormalMode) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, kDisks,
                         NcOptions(NcTransition::kDeferredRead));
  auto* nc = static_cast<NonClusteredScheduler*>(rig.sched.get());
  rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->OnDiskFailed(2, false);
  EXPECT_TRUE(nc->ClusterDegraded(0));
  EXPECT_TRUE(nc->buffer_servers().IsAttached(0));
  rig.sched->RunCycles(8);
  rig.sched->OnDiskRepaired(2);
  EXPECT_FALSE(nc->ClusterDegraded(0));
  EXPECT_FALSE(nc->buffer_servers().IsAttached(0));
  const int64_t parity_reads = rig.sched->metrics().parity_reads;
  rig.sched->RunCycles(20);
  // Back to normal: no more parity activity.
  EXPECT_EQ(rig.sched->metrics().parity_reads, parity_reads);
}

}  // namespace
}  // namespace ftms
