#include "model/cost.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ftms {
namespace {

DesignParameters Figure9Design() {
  DesignParameters d;
  d.working_set_mb = 100000.0;  // W = 100 GB
  return d;
}

SystemParameters Figure9System() {
  SystemParameters p;  // Table 1 values
  p.k_reserve = 5;     // Figure 9 uses K_NC = K_IB = 5
  return p;
}

TEST(CostTest, DisksForWorkingSet) {
  // D(W, C): 100 GB of data on 1 GB disks at (C-1)/C data fraction.
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  EXPECT_EQ(DisksForWorkingSet(d, p, 5), 125);   // 100000 / 800
  EXPECT_EQ(DisksForWorkingSet(d, p, 4), 134);   // ceil(133.3)
  EXPECT_EQ(DisksForWorkingSet(d, p, 10), 112);  // ceil(111.1)
  EXPECT_EQ(DisksForWorkingSet(d, p, 2), 200);
}

TEST(CostTest, Section5WorkedExampleStreamingRaid) {
  // "The cost of supporting ~1200 streams in the Streaming RAID scheme is
  // ~$173,400 and requires parity groups of size 4."
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  const DesignPoint point =
      EvaluateDesign(d, p, Scheme::kStreamingRaid, 4).value();
  EXPECT_EQ(point.num_disks, 134);
  EXPECT_GT(point.max_streams, 1200);
  // Calibrated prices (DESIGN.md §3): within 5% of the paper's figure.
  EXPECT_NEAR(point.cost_dollars, 173400.0, 0.05 * 173400.0);
}

TEST(CostTest, CostBroadlyDecreasesWithCForClusteredSchemes) {
  // Figure 9(a): SR/SG/NC total cost falls steeply at small C (disk count
  // to hold W shrinks) and flattens as buffer growth catches up. With the
  // calibrated prices the broad decline holds: C=10 is cheaper than C=3,
  // which is cheaper than C=2. (The paper's exact curve shapes are not
  // jointly reproducible with its own worked numbers — EXPERIMENTS.md.)
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  for (Scheme scheme :
       {Scheme::kStreamingRaid, Scheme::kStaggeredGroup,
        Scheme::kNonClustered}) {
    const double c2 = EvaluateDesign(d, p, scheme, 2)->cost_dollars;
    const double c3 = EvaluateDesign(d, p, scheme, 3)->cost_dollars;
    EXPECT_LT(c3, c2) << SchemeName(scheme);
  }
  // The memory-light SG/NC keep getting cheaper through C=10...
  for (Scheme scheme :
       {Scheme::kStaggeredGroup, Scheme::kNonClustered}) {
    EXPECT_LT(EvaluateDesign(d, p, scheme, 10)->cost_dollars,
              EvaluateDesign(d, p, scheme, 3)->cost_dollars)
        << SchemeName(scheme);
  }
  // ...while SR's 2C-per-stream buffers dominate at large C, which is why
  // the paper's 1200-stream SR design stops at groups of 4.
  EXPECT_GT(EvaluateDesign(d, p, Scheme::kStreamingRaid, 10)->cost_dollars,
            EvaluateDesign(d, p, Scheme::kStreamingRaid, 4)->cost_dollars);
}

TEST(CostTest, ImprovedBandwidthBufferCostEventuallyDominates) {
  // Figure 9(a): the IB curve turns upward with cluster size (2(C-1)
  // buffers per stream at the largest stream population of any scheme).
  // Past its minimum the curve rises monotonically through C=10.
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  std::vector<double> costs;
  for (int c = 2; c <= 10; ++c) {
    costs.push_back(
        EvaluateDesign(d, p, Scheme::kImprovedBandwidth, c)->cost_dollars);
  }
  const size_t min_idx = static_cast<size_t>(
      std::min_element(costs.begin(), costs.end()) - costs.begin());
  EXPECT_LT(min_idx, 4u);  // minimum at small C
  for (size_t i = min_idx + 1; i < costs.size(); ++i) {
    EXPECT_GE(costs[i], costs[i - 1]) << "C=" << i + 2;
  }
  EXPECT_GT(costs.back(), costs[min_idx] * 1.1);
}

TEST(CostTest, PlannerReproducesSrGroupOf4) {
  // Section 5: the cheapest Streaming RAID system for 1200 streams uses
  // parity groups of size 4 at ~$173,400 — the planner lands exactly
  // there with the calibrated prices.
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  PlanRequest req;
  req.required_streams = 1200;
  const DesignPoint point =
      PlanCheapest(d, p, Scheme::kStreamingRaid, req).value();
  EXPECT_EQ(point.parity_group_size, 4);
  EXPECT_NEAR(point.cost_dollars, 173400.0, 0.05 * 173400.0);
}

TEST(CostTest, ImprovedBandwidthStreamsFallWithC) {
  // Figure 9(b): IB streams decrease with C because the disks needed to
  // hold W decrease.
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  int prev = EvaluateDesign(d, p, Scheme::kImprovedBandwidth, 2)
                 ->max_streams;
  for (int c = 3; c <= 10; ++c) {
    const int streams =
        EvaluateDesign(d, p, Scheme::kImprovedBandwidth, c)->max_streams;
    EXPECT_LT(streams, prev);
    prev = streams;
  }
}

TEST(CostTest, PlannerPicksCheaperSchemesAt1200Streams) {
  // Section 5: at 1200 required streams the clustered schemes win on
  // cost (NC < SG < SR in dollars); at 1500 streams IB becomes the
  // scheme of choice (bandwidth-bound regime).
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  PlanRequest req;
  req.required_streams = 1200;
  const DesignPoint sr =
      PlanCheapest(d, p, Scheme::kStreamingRaid, req).value();
  const DesignPoint sg =
      PlanCheapest(d, p, Scheme::kStaggeredGroup, req).value();
  const DesignPoint nc =
      PlanCheapest(d, p, Scheme::kNonClustered, req).value();
  EXPECT_LT(nc.cost_dollars, sg.cost_dollars);
  EXPECT_LT(sg.cost_dollars, sr.cost_dollars);
  EXPECT_GE(sr.max_streams, 1200);
  EXPECT_GE(nc.max_streams, 1200);
}

TEST(CostTest, PlannerMeetsDemandByBuyingDisks) {
  // When the required stream count exceeds what the minimum-capacity farm
  // supports, the planner adds disks beyond D(W, C).
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  PlanRequest req;
  req.required_streams = 2500;
  const DesignPoint point =
      PlanCheapest(d, p, Scheme::kStreamingRaid, req).value();
  EXPECT_GE(point.max_streams, 2500);
  EXPECT_GT(point.num_disks, DisksForWorkingSet(d, p, 10));
}

TEST(CostTest, PlanAllSchemesSortedByCost) {
  const DesignParameters d = Figure9Design();
  const SystemParameters p = Figure9System();
  PlanRequest req;
  req.required_streams = 1200;
  const std::vector<DesignPoint> plans = PlanAllSchemes(d, p, req);
  ASSERT_EQ(plans.size(), 4u);
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].cost_dollars, plans[i].cost_dollars);
  }
}

TEST(CostTest, InfeasibleRequestReturnsNotFound) {
  const DesignParameters d = Figure9Design();
  SystemParameters p = Figure9System();
  p.disk.seek_time_s = 100.0;  // nothing can be scheduled
  PlanRequest req;
  req.required_streams = 10;
  EXPECT_EQ(PlanCheapest(d, p, Scheme::kStreamingRaid, req).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ftms
