#include "server/tertiary.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(TertiaryTest, ExtentTimeIsSwitchPlusTransfer) {
  TertiaryParameters params;
  params.bandwidth_mb_s = 0.5;
  params.tape_switch_s = 90.0;
  TertiaryStore store(params);
  EXPECT_DOUBLE_EQ(store.ExtentTime(100.0), 90.0 + 200.0);
}

TEST(TertiaryTest, TertiaryIsMuchSlowerThanDisk) {
  // Footnote 2: tape ~4 Mb/s vs disk ~32 Mb/s; the latency gap is why
  // objects are never served from tertiary directly.
  TertiaryStore store{TertiaryParameters{}};
  // 1 GB object: disk at 2.5 MB/s streams it in ~400 s; one tape extent
  // takes 90 + 2000 s.
  EXPECT_GT(store.ExtentTime(1000.0), 5.0 * 400.0);
}

TEST(TertiaryTest, ReloadParallelizesOverDrives) {
  TertiaryParameters params;
  params.num_drives = 4;
  TertiaryStore store(params);
  const double one_drive_equiv =
      1000 * params.tape_switch_s + 10000.0 / params.bandwidth_mb_s;
  EXPECT_DOUBLE_EQ(store.ReloadTime(10000.0, 1000), one_drive_equiv / 4);
}

TEST(TertiaryTest, ReloadOfNothingIsFree) {
  TertiaryStore store{TertiaryParameters{}};
  EXPECT_DOUBLE_EQ(store.ReloadTime(0, 100), 0.0);
}

TEST(TertiaryTest, ManyExtentsDominatedBySwitches) {
  // A failed disk holds fragments of MANY objects ("many tapes may need
  // to be referenced"): switch time dominates, which is the paper's
  // argument that rebuild-from-tertiary is very slow.
  TertiaryStore store{TertiaryParameters{}};
  const double few = store.ReloadTime(1000.0, 10);
  const double many = store.ReloadTime(1000.0, 1000);
  EXPECT_GT(many, 10 * few);
}

}  // namespace
}  // namespace ftms
