#include "model/ablation.h"

#include <gtest/gtest.h>

#include "model/capacity.h"

namespace ftms {
namespace {

TEST(AblationTest, SweepAlwaysBeatsFifo) {
  // Section 2: "This optimization of seek times is very important since
  // otherwise a significant portion of disk bandwidth could be lost."
  SystemParameters p;
  for (int k_prime : {1, 2, 4, 6, 9}) {
    EXPECT_GT(SweepGainOverFifo(p, k_prime), 1.0) << "k'=" << k_prime;
  }
}

TEST(AblationTest, GainGrowsWithKPrime) {
  // Longer cycles amortize the one seek over more tracks.
  SystemParameters p;
  double prev = 0;
  for (int k_prime : {1, 2, 4, 8}) {
    const double gain = SweepGainOverFifo(p, k_prime);
    EXPECT_GT(gain, prev);
    prev = gain;
  }
}

TEST(AblationTest, FifoCapacityFormula) {
  // Table 1 disk, average seek = full stroke / 3: per request
  // 25/3 + 20 = 28.33 ms per 50 KB track at 0.1875 MB/s.
  SystemParameters p;
  const double fifo = StreamsPerDataDiskFifo(p);
  EXPECT_NEAR(fifo, 0.05 / (0.1875 * (0.025 / 3 + 0.020)), 1e-9);
  // The sweep bound at k' = 4 is ~38% higher.
  EXPECT_NEAR(StreamsPerDataDisk(p, 4) / fifo, 1.38, 0.02);
}

TEST(AblationTest, FullStrokeFifoIsDevastating) {
  // A naive scheduler paying the full stroke per request loses over half
  // the capacity.
  SystemParameters p;
  EXPECT_GT(SweepGainOverFifo(p, 4, /*seek_fraction=*/1.0), 2.0);
}

TEST(AblationTest, ZeroSeekDiskMakesSweepIrrelevant) {
  SystemParameters p;
  p.disk.seek_time_s = 0.0;
  EXPECT_NEAR(SweepGainOverFifo(p, 4, /*seek_fraction=*/1.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace ftms
