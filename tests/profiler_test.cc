#include "util/profiler.h"

#include <gtest/gtest.h>

#include <string>

#include "util/thread_pool.h"

namespace ftms {
namespace {

// Each test runs with the profiler explicitly enabled and leaves it
// disabled and empty, so test order cannot matter.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::SetGlobalEnabled(true);
    Profiler::Reset();
  }
  void TearDown() override {
    Profiler::Reset();
    Profiler::SetGlobalEnabled(false);
  }
};

TEST_F(ProfilerTest, CountsScopeEntries) {
  for (int i = 0; i < 7; ++i) {
    FTMS_PROF_SCOPE("test/outer");
  }
  EXPECT_EQ(Profiler::CountOf("test/outer"), 7);
  EXPECT_EQ(Profiler::CountOf("test/never"), 0);
}

TEST_F(ProfilerTest, NestingBuildsATree) {
  {
    FTMS_PROF_SCOPE("test/parent");
    for (int i = 0; i < 3; ++i) {
      FTMS_PROF_SCOPE("test/child");
    }
  }
  Profiler::FoldAtSyncPoint();
  const Profiler::MergedNode tree = Profiler::MergedTree();
  ASSERT_EQ(tree.children.size(), 1u);
  const Profiler::MergedNode& parent = tree.children[0];
  EXPECT_EQ(parent.name, "test/parent");
  EXPECT_EQ(parent.count, 1);
  ASSERT_EQ(parent.children.size(), 1u);
  EXPECT_EQ(parent.children[0].name, "test/child");
  EXPECT_EQ(parent.children[0].count, 3);
  // Wall time flows upward: a parent's total covers its children.
  EXPECT_GE(parent.total_ns, parent.children[0].total_ns);
}

TEST_F(ProfilerTest, FoldPreservesCountsAcrossSyncPoints) {
  {
    FTMS_PROF_SCOPE("test/work");
  }
  Profiler::FoldAtSyncPoint();
  {
    FTMS_PROF_SCOPE("test/work");
  }
  Profiler::FoldAtSyncPoint();
  EXPECT_EQ(Profiler::CountOf("test/work"), 2);
}

TEST_F(ProfilerTest, DisabledScopesRecordNothing) {
  Profiler::SetGlobalEnabled(false);
  {
    FTMS_PROF_SCOPE("test/off");
  }
  Profiler::SetGlobalEnabled(true);
  EXPECT_EQ(Profiler::CountOf("test/off"), 0);
}

// The invariance contract: per-NAME counts depend only on how many
// times the annotated work unit ran, never on how the pool chunked the
// range across workers.
int64_t CountItemsWithPool(int pool_threads, int64_t items) {
  Profiler::Reset();
  ThreadPool pool(pool_threads);
  ParallelFor(&pool, 0, items, [](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      FTMS_PROF_SCOPE("test/item");
    }
  });
  Profiler::FoldAtSyncPoint();
  return Profiler::CountOf("test/item");
}

TEST_F(ProfilerTest, CountsAreThreadCountInvariant) {
  const int64_t kItems = 1000;
  EXPECT_EQ(CountItemsWithPool(1, kItems), kItems);
  EXPECT_EQ(CountItemsWithPool(4, kItems), kItems);
  EXPECT_EQ(CountItemsWithPool(8, kItems), kItems);
}

TEST_F(ProfilerTest, SnapshotJsonShape) {
  {
    FTMS_PROF_SCOPE("test/a");
    FTMS_PROF_SCOPE("test/b");
  }
  Profiler::FoldAtSyncPoint();
  const std::string json = Profiler::SnapshotJson();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test/a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test/b\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST_F(ProfilerTest, ResetDropsEverything) {
  {
    FTMS_PROF_SCOPE("test/gone");
  }
  Profiler::FoldAtSyncPoint();
  ASSERT_EQ(Profiler::CountOf("test/gone"), 1);
  Profiler::Reset();
  EXPECT_EQ(Profiler::CountOf("test/gone"), 0);
  EXPECT_TRUE(Profiler::MergedTree().children.empty());
}

}  // namespace
}  // namespace ftms
