#include "server/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

TEST(TraceTest, RecordsPerCycleDeltas) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 16)).value();
  for (int i = 0; i < 6; ++i) {
    rig.sched->RunCycle();
    trace.Sample();
  }
  ASSERT_EQ(trace.samples().size(), 6u);
  // First cycle: read only; deliveries start in cycle 2.
  EXPECT_EQ(trace.samples()[0].tracks_delivered_delta, 0);
  EXPECT_EQ(trace.samples()[1].tracks_delivered_delta, 4);
  // Sum of deltas equals the final counter.
  int64_t sum = 0;
  for (const CycleSample& s : trace.samples()) {
    sum += s.tracks_delivered_delta;
  }
  EXPECT_EQ(sum, rig.sched->metrics().tracks_delivered);
}

TEST(TraceTest, CapturesFailureState) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->RunCycle();
  trace.Sample();
  rig.sched->OnDiskFailed(1, false);
  rig.sched->RunCycle();
  trace.Sample();
  EXPECT_EQ(trace.samples()[0].failed_disks, 0);
  EXPECT_EQ(trace.samples()[1].failed_disks, 1);
}

TEST(TraceTest, CsvRoundTrip) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 10);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 8)).value();
  for (int i = 0; i < 4; ++i) {
    rig.sched->RunCycle();
    trace.Sample();
  }
  const std::string csv = ToCsv(trace.samples());
  // Header + 4 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_NE(csv.find("cycle,active_streams"), std::string::npos);

  const std::string path = "/tmp/ftms_trace_test.csv";
  ASSERT_TRUE(WriteCsv(trace.samples(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_FALSE(WriteCsv(trace.samples(), "/nonexistent/dir/x.csv").ok());
}

TEST(TraceTest, ClearResets) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 16)).value();
  // Run enough cycles that the pre-Clear counters are NONZERO; otherwise
  // a Clear() that forgot to reset the delta baseline would still pass.
  for (int i = 0; i < 3; ++i) {
    rig.sched->RunCycle();
    trace.Sample();
  }
  ASSERT_GT(rig.sched->metrics().tracks_delivered, 0);
  trace.Clear();
  EXPECT_TRUE(trace.samples().empty());
  rig.sched->RunCycle();
  trace.Sample();
  // Deltas restart from zero baseline after Clear: the first post-Clear
  // sample reports the scheduler's full cumulative totals.
  EXPECT_EQ(trace.samples()[0].tracks_delivered_delta,
            rig.sched->metrics().tracks_delivered);
}

TEST(TraceTest, PerDiskUtilizationFromRegistry) {
  MetricsRegistry registry;
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10, &registry);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 64)).value();
  for (int i = 0; i < 4; ++i) {
    rig.sched->RunCycle();
    trace.Sample();
  }
  const CycleSample& s = trace.samples().back();
  // The series covers every disk of the farm.
  ASSERT_EQ(s.disk_busy_delta.size(),
            static_cast<size_t>(rig.disks->num_disks()));
  int64_t busy = 0;
  for (int64_t d : s.disk_busy_delta) busy += d;
  EXPECT_GT(busy, 0);
  EXPECT_GT(s.disk_util_max_pct, 0.0);
  EXPECT_GE(s.disk_util_max_pct, s.disk_util_mean_pct);
  EXPECT_LE(s.disk_util_max_pct, 100.0);
}

TEST(TraceTest, NoDiskSeriesWhenUninstrumented) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  TraceRecorder trace(rig.sched.get(), rig.disks.get());
  rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycle();
  trace.Sample();
  EXPECT_TRUE(trace.samples()[0].disk_busy_delta.empty());
  EXPECT_EQ(trace.samples()[0].disk_util_mean_pct, 0.0);
}

}  // namespace
}  // namespace ftms
