#include "qos/conformance.h"

#include <gtest/gtest.h>

#include "sched/streaming_raid_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

struct QosRig {
  EventJournal journal;
  QosLedger ledger;
  SchedRig rig;
};

std::unique_ptr<QosRig> MakeQosRig(Scheme scheme, int num_disks,
                                   RigOptions options = RigOptions()) {
  auto q = std::make_unique<QosRig>();
  q->ledger.set_journal(&q->journal);
  options.journal = &q->journal;
  options.ledger = &q->ledger;
  q->rig = MakeRig(scheme, 5, num_disks, options);
  return q;
}

const ConformanceFinding* Find(
    const std::vector<ConformanceFinding>& findings,
    std::string_view check) {
  for (const ConformanceFinding& f : findings) {
    if (f.check == check) return &f;
  }
  return nullptr;
}

TEST(ConformanceTest, SrMaskedFailurePassesAllChecks) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(20);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* zero =
      Find(findings, "sr_zero_hiccup_guarantee");
  ASSERT_NE(zero, nullptr);
  EXPECT_TRUE(zero->applicable);
  EXPECT_TRUE(zero->ok);
  EXPECT_EQ(zero->observed, 0);
  const ConformanceFinding* attribution =
      Find(findings, "hiccup_attribution_consistent");
  ASSERT_NE(attribution, nullptr);
  EXPECT_TRUE(attribution->ok);
}

TEST(ConformanceTest, SgMaskedFailurePassesAllChecks) {
  auto q = MakeQosRig(Scheme::kStaggeredGroup, 10);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(30);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* zero =
      Find(findings, "sg_zero_hiccup_guarantee");
  ASSERT_NE(zero, nullptr);
  EXPECT_TRUE(zero->applicable);
  EXPECT_EQ(zero->observed, 0);
}

// The canonical NC transition drill (Figures 5-7, see sched_nc_test.cc).
std::unique_ptr<QosRig> RunNcTransition(NcTransition transition) {
  RigOptions options;
  options.nc_transition = transition;
  options.slots_per_disk = 1;
  auto q = MakeQosRig(Scheme::kNonClustered, 10, options);
  int next_object = 0;
  const auto add = [&] {
    q->rig.sched->AddStream(TestObject(2 * next_object++, 8)).value();
  };
  add();                        // U
  q->rig.sched->RunCycle();
  add();                        // W
  q->rig.sched->RunCycle();
  add();                        // Y
  q->rig.sched->RunCycle();
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  for (int i = 0; i < 4; ++i) {  // A, C, E, G
    add();
    q->rig.sched->RunCycle();
  }
  q->rig.sched->RunCycles(20);
  return q;
}

TEST(ConformanceTest, NcImmediateShiftMeetsTheTightBound) {
  auto q = RunNcTransition(NcTransition::kImmediateShift);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  // Figure 6 loses exactly 1+2+3 = 6 tracks at C=5: the paper's
  // (C-1)(C-2)/2 bound is tight and the watchdog sees it met exactly.
  const ConformanceFinding* total = Find(findings, "nc_loss_total_bound");
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(total->applicable);
  EXPECT_EQ(total->observed, 6);
  EXPECT_EQ(total->bound, 6);
  const ConformanceFinding* per_stream =
      Find(findings, "nc_loss_per_stream_bound");
  ASSERT_NE(per_stream, nullptr);
  EXPECT_EQ(per_stream->observed, 3);  // Y, at group position 1
  EXPECT_EQ(per_stream->bound, 3);     // C - 2
  const ConformanceFinding* window =
      Find(findings, "nc_transition_window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->observed, 0);  // nothing lost outside [f, f+C]
}

TEST(ConformanceTest, NcDeferredReadStaysUnderTheBound) {
  auto q = RunNcTransition(NcTransition::kDeferredRead);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* total = Find(findings, "nc_loss_total_bound");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->observed, 3);  // Figure 7: W2, Y2, Y3 only
  EXPECT_EQ(total->bound, 6);
}

TEST(ConformanceTest, IbMidCycleFailureStaysIsolated) {
  auto q = MakeQosRig(Scheme::kImprovedBandwidth, 8);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(0, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(20);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* isolated =
      Find(findings, "ib_isolated_hiccup");
  ASSERT_NE(isolated, nullptr);
  EXPECT_TRUE(isolated->applicable);
  EXPECT_EQ(isolated->observed, 1);
  EXPECT_EQ(isolated->bound, 1);  // one mid-sweep failure
  const ConformanceFinding* window = Find(findings, "ib_hiccup_window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->observed, 0);  // confined to [f, f+1]
  const ConformanceFinding* cascade =
      Find(findings, "ib_cascade_depth_bound");
  ASSERT_NE(cascade, nullptr);
  EXPECT_LE(cascade->observed, 2);  // at most once around 2 clusters
  const ConformanceFinding* reserve =
      Find(findings, "ib_reserve_degradation");
  ASSERT_NE(reserve, nullptr);
  EXPECT_TRUE(reserve->applicable);
  EXPECT_EQ(reserve->observed, 0);
}

TEST(ConformanceTest, ChecksSkipWhenNoFailureWasInjected) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  q->rig.sched->AddStream(TestObject(0, 16)).value();
  q->rig.sched->RunCycles(8);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* zero =
      Find(findings, "sr_zero_hiccup_guarantee");
  ASSERT_NE(zero, nullptr);
  EXPECT_FALSE(zero->applicable);
  EXPECT_NE(zero->detail.find("no failures"), std::string::npos);
}

TEST(ConformanceTest, ChecksSkipWithoutAJournal) {
  SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 10);
  rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(8);
  ConformanceWatchdog watchdog(rig.sched.get(), nullptr);
  const auto findings = watchdog.Run();
  EXPECT_TRUE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* window =
      Find(findings, "nc_transition_window");
  ASSERT_NE(window, nullptr);
  EXPECT_FALSE(window->applicable);
  EXPECT_NE(window->detail.find("no journal"), std::string::npos);
}

TEST(ConformanceTest, OverlappingFailuresVoidTheBounds) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);  // cluster 0
  q->rig.sched->OnDiskFailed(7, /*mid_cycle=*/false);  // cluster 1
  q->rig.sched->RunCycles(10);
  ConformanceWatchdog watchdog(q->rig.sched.get(), &q->journal);
  const auto findings = watchdog.Run();
  const ConformanceFinding* zero =
      Find(findings, "sr_zero_hiccup_guarantee");
  ASSERT_NE(zero, nullptr);
  EXPECT_FALSE(zero->applicable);
  EXPECT_NE(zero->detail.find("overlapping"), std::string::npos);
}

// A deliberately broken SR variant: after a failure it charges one
// delivery as missed even though parity masked it — the exact bug class
// (accounting drift between masking and delivery) the watchdog exists to
// catch. Test-only; lives nowhere near the production schedulers.
class BrokenStreamingRaidScheduler : public StreamingRaidScheduler {
 public:
  using StreamingRaidScheduler::StreamingRaidScheduler;

 protected:
  void DoRunCycle() override {
    StreamingRaidScheduler::DoRunCycle();
    if (disks_->NumFailed() > 0 && !tripped_) {
      for (const auto& stream : streams()) {
        if (stream->state() == StreamState::kActive) {
          DeliverTrack(FindStream(stream->id()), /*on_time=*/false);
          tripped_ = true;
          break;
        }
      }
    }
  }

 private:
  bool tripped_ = false;
};

TEST(ConformanceTest, BrokenSchedulerTripsTheZeroHiccupGuarantee) {
  EventJournal journal;
  QosLedger ledger;
  ledger.set_journal(&journal);
  auto layout = std::move(
      CreateLayout(Scheme::kStreamingRaid, 10, 5).value());
  DiskParameters disk;
  auto disks = std::make_unique<DiskArray>(std::move(
      DiskArray::Create(10, layout->disks_per_cluster(), disk).value()));
  SchedulerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.disk = disk;
  config.journal = &journal;
  config.ledger = &ledger;
  BrokenStreamingRaidScheduler sched(config, disks.get(), layout.get());
  sched.AddStream(TestObject(0, 64)).value();
  sched.RunCycles(2);
  sched.OnDiskFailed(2, /*mid_cycle=*/true);
  sched.RunCycles(10);

  ConformanceWatchdog watchdog(&sched, &journal);
  const auto findings = watchdog.Run();
  EXPECT_FALSE(ConformanceWatchdog::AllOk(findings));
  const ConformanceFinding* zero =
      Find(findings, "sr_zero_hiccup_guarantee");
  ASSERT_NE(zero, nullptr);
  EXPECT_TRUE(zero->applicable);
  EXPECT_FALSE(zero->ok);
  EXPECT_GE(zero->observed, 1);
  // The forged hiccup also reached the ledger and the journal: the whole
  // observability chain reports the violation, not just the counter.
  EXPECT_GT(journal.CountOf(QosEventKind::kHiccups), 0);
  const std::string table = ConformanceWatchdog::FormatTable(findings);
  EXPECT_NE(table.find("VIOLATION"), std::string::npos);
  const std::string json = ConformanceWatchdog::ToJson(findings);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

TEST(ConformanceTest, FormatTableAndJsonCoverSkippedChecks) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  rig.sched->RunCycles(2);
  ConformanceWatchdog watchdog(rig.sched.get(), nullptr);
  const auto findings = watchdog.Run();
  const std::string table = ConformanceWatchdog::FormatTable(findings);
  EXPECT_NE(table.find("check"), std::string::npos);
  EXPECT_NE(table.find("SKIPPED"), std::string::npos);
  EXPECT_NE(table.find("OK"), std::string::npos);
  const std::string json = ConformanceWatchdog::ToJson(findings);
  EXPECT_NE(json.find("\"applicable\": false"), std::string::npos);
}

}  // namespace
}  // namespace ftms
