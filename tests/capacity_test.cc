#include "model/capacity.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace ftms {
namespace {

SystemParameters Table1() { return SystemParameters(); }

TEST(CapacityTest, CycleLengthMatchesDefinition) {
  // T_cyc = k' B / b_o: one track of 50 KB at 1.5 Mb/s takes 0.2667 s.
  const SystemParameters p = Table1();
  EXPECT_NEAR(CycleSeconds(p, 1), 0.05 / 0.1875, 1e-12);
  EXPECT_NEAR(CycleSeconds(p, 4), 4 * 0.05 / 0.1875, 1e-12);
}

TEST(CapacityTest, Section2KSweepMpeg2) {
  // Section 2 inline table: T_seek = 30 ms, T_trk = 10 ms, B = 100 KB,
  // b_o = 4.5 Mb/s (MPEG-2): k=1 -> 14.7, k=2 -> 16.2, k=10 -> 17.4
  // streams per disk (k = k').
  SystemParameters p;
  p.disk.seek_time_s = 0.030;
  p.disk.track_time_s = 0.010;
  p.disk.track_mb = 0.100;
  p.object_rate_mb_s = kMpeg2RateMbS;
  EXPECT_NEAR(StreamsPerDataDisk(p, 1), 14.7, 0.1);
  EXPECT_NEAR(StreamsPerDataDisk(p, 2), 16.2, 0.1);
  EXPECT_NEAR(StreamsPerDataDisk(p, 10), 17.4, 0.1);
}

TEST(CapacityTest, Section2KSweepMpeg1VariationIsFivePercent) {
  // For b_o = 1.5 Mb/s the paper reports only ~5% spread between k = 1
  // and k = 10.
  SystemParameters p;
  p.disk.seek_time_s = 0.030;
  p.disk.track_time_s = 0.010;
  p.disk.track_mb = 0.100;
  p.object_rate_mb_s = kMpeg1RateMbS;
  const double n1 = StreamsPerDataDisk(p, 1);
  const double n10 = StreamsPerDataDisk(p, 10);
  EXPECT_NEAR((n10 - n1) / n10, 0.05, 0.01);
}

TEST(CapacityTest, KPrimePerScheme) {
  EXPECT_EQ(KPrimeOf(Scheme::kStreamingRaid, 5), 4);
  EXPECT_EQ(KPrimeOf(Scheme::kImprovedBandwidth, 5), 4);
  EXPECT_EQ(KPrimeOf(Scheme::kStaggeredGroup, 5), 1);
  EXPECT_EQ(KPrimeOf(Scheme::kNonClustered, 5), 1);
}

TEST(CapacityTest, DataDisksPerScheme) {
  const SystemParameters p = Table1();  // D = 100, K = 3
  EXPECT_DOUBLE_EQ(DataDisks(p, Scheme::kStreamingRaid, 5), 80.0);
  EXPECT_DOUBLE_EQ(DataDisks(p, Scheme::kStaggeredGroup, 5), 80.0);
  EXPECT_DOUBLE_EQ(DataDisks(p, Scheme::kNonClustered, 5), 80.0);
  EXPECT_DOUBLE_EQ(DataDisks(p, Scheme::kImprovedBandwidth, 5), 97.0);
}

TEST(CapacityTest, Table2Streams) {
  // Table 2 (C = 5): SR 1041, SG 966, NC 966, IB 1263.
  const SystemParameters p = Table1();
  EXPECT_EQ(MaxStreams(p, Scheme::kStreamingRaid, 5).value(), 1041);
  EXPECT_EQ(MaxStreams(p, Scheme::kStaggeredGroup, 5).value(), 966);
  EXPECT_EQ(MaxStreams(p, Scheme::kNonClustered, 5).value(), 966);
  EXPECT_EQ(MaxStreams(p, Scheme::kImprovedBandwidth, 5).value(), 1263);
}

TEST(CapacityTest, Table3Streams) {
  // Table 3 (C = 7): SR 1125, SG 1035, NC 1035, IB 1273.
  const SystemParameters p = Table1();
  EXPECT_EQ(MaxStreams(p, Scheme::kStreamingRaid, 7).value(), 1125);
  EXPECT_EQ(MaxStreams(p, Scheme::kStaggeredGroup, 7).value(), 1035);
  EXPECT_EQ(MaxStreams(p, Scheme::kNonClustered, 7).value(), 1035);
  EXPECT_EQ(MaxStreams(p, Scheme::kImprovedBandwidth, 7).value(), 1273);
}

TEST(CapacityTest, StreamsGrowWithGroupSizeForSr) {
  // Larger clusters amortize the seek over more tracks per cycle.
  const SystemParameters p = Table1();
  int prev = 0;
  for (int c = 2; c <= 10; ++c) {
    const int n = MaxStreams(p, Scheme::kStreamingRaid, c).value();
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(CapacityTest, SeekDominatedCycleSupportsNoStreams) {
  SystemParameters p = Table1();
  p.disk.seek_time_s = 10.0;  // pathological: seek exceeds any cycle
  EXPECT_EQ(StreamsPerDataDisk(p, 1), 0.0);
  EXPECT_EQ(MaxStreams(p, Scheme::kNonClustered, 5).value(), 0);
}

TEST(CapacityTest, InvalidArgumentsRejected) {
  const SystemParameters p = Table1();
  EXPECT_FALSE(MaxStreams(p, Scheme::kStreamingRaid, 1).ok());
  SystemParameters bad = p;
  bad.num_disks = 0;
  EXPECT_FALSE(MaxStreams(bad, Scheme::kStreamingRaid, 5).ok());
}

}  // namespace
}  // namespace ftms
