#include <gtest/gtest.h>

#include <tuple>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// The determinism contract of cluster-parallel cycle execution: every
// metrics counter AND the buffer-pool peak are byte-identical at any
// thread count — the `threads` knob trades wall-clock for cores and
// nothing else. Farm-scale populations (~1000 streams, well above the
// small-population serial guard) ensure the parallel path actually
// dispatches; a mid-cycle failure exercises the degraded planning,
// reconstruction and (for IB) the right-shift cascade under sharding.

struct RunResult {
  SchedulerMetrics metrics;
  int64_t pool_peak = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult RunScenario(Scheme scheme, int c, int disks, int streams,
                      int stagger_every, int threads, bool fail) {
  RigOptions options;
  options.threads = threads;
  SchedRig rig = MakeRig(scheme, c, disks, options);
  const int clusters = rig.layout->num_clusters();
  for (int i = 0; i < streams; ++i) {
    rig.sched->AddStream(TestObject(i % clusters, 100000)).value();
    // NC balances by stream POSITION, set by the start cycle: admit in
    // slot-sized groups, one cycle apart.
    if (stagger_every > 0 && i % stagger_every == stagger_every - 1) {
      rig.sched->RunCycle();
    }
  }
  rig.sched->RunCycles(30);
  if (fail) {
    rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
    rig.sched->RunCycles(30);
    rig.sched->OnDiskRepaired(1);
  }
  rig.sched->RunCycles(10);
  return {rig.sched->metrics(), rig.sched->buffer_pool().peak_in_use()};
}

class ParallelCycleGolden
    : public ::testing::TestWithParam<std::tuple<Scheme, bool>> {};

TEST_P(ParallelCycleGolden, MetricsIdenticalAtEveryThreadCount) {
  const auto [scheme, fail] = GetParam();
  const int c = 5;
  const int disks = scheme == Scheme::kImprovedBandwidth ? 96 : 100;
  const int streams = scheme == Scheme::kStreamingRaid ? 1040 : 960;
  const int stagger = scheme == Scheme::kNonClustered ? 12 : 0;

  const RunResult serial =
      RunScenario(scheme, c, disks, streams, stagger, /*threads=*/1, fail);
  for (const int threads : {2, 8}) {
    const RunResult parallel =
        RunScenario(scheme, c, disks, streams, stagger, threads, fail);
    EXPECT_EQ(parallel.metrics, serial.metrics)
        << SchemeName(scheme) << " with " << threads
        << " threads diverged from the serial schedule"
        << (fail ? " (mid-cycle failure run)" : " (healthy run)");
    EXPECT_EQ(parallel.pool_peak, serial.pool_peak)
        << SchemeName(scheme) << " buffer peak at " << threads
        << " threads";
  }
  // Sanity: the scenario did real work.
  EXPECT_GT(serial.metrics.tracks_delivered, 0);
  EXPECT_GT(serial.pool_peak, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesHealthyAndFailed, ParallelCycleGolden,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kStaggeredGroup,
                                         Scheme::kNonClustered,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Bool()));

// NC multi-rate bursts can span clusters, which falls the whole cycle
// back to one serial shard; the fallback decision is a pure function of
// scheduler state, so mixed-rate runs must stay thread-count-invariant
// too.
TEST(ParallelCycleGolden, NcMultiRateFallbackIsDeterministic) {
  auto run = [](int threads) {
    RigOptions options;
    options.threads = threads;
    SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 100, options);
    const int clusters = rig.layout->num_clusters();
    for (int i = 0; i < 400; ++i) {
      // Every seventh stream at 3x the base rate (MPEG-2 over MPEG-1).
      const double rate = (i % 7 == 0) ? 3 * 0.1875 : 0.1875;
      rig.sched->AddStream(TestObject(i % clusters, 9996, rate)).value();
      if (i % 12 == 11) rig.sched->RunCycle();
    }
    rig.sched->RunCycles(30);
    rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
    rig.sched->RunCycles(30);
    rig.sched->OnDiskRepaired(1);
    rig.sched->RunCycles(10);
    return RunResult{rig.sched->metrics(),
                     rig.sched->buffer_pool().peak_in_use()};
  };
  const RunResult serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
  EXPECT_GT(serial.metrics.tracks_delivered, 0);
}

}  // namespace
}  // namespace ftms
