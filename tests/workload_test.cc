#include "stream/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "util/units.h"

namespace ftms {
namespace {

TEST(WorkloadTest, StandardCatalogMixesRates) {
  const std::vector<MediaObject> catalog =
      MakeStandardCatalog(10, 0.3, 0.05);
  ASSERT_EQ(catalog.size(), 10u);
  int mpeg2 = 0;
  for (const MediaObject& obj : catalog) {
    if (obj.rate_mb_s == kMpeg2RateMbS) ++mpeg2;
  }
  EXPECT_EQ(mpeg2, 3);
  // MPEG-2 movies are proportionally larger.
  EXPECT_GT(catalog.front().num_tracks, catalog.back().num_tracks);
}

TEST(WorkloadTest, ArrivalsAreMonotoneAndPoissonish) {
  WorkloadConfig config;
  config.arrival_rate_per_s = 2.0;
  config.seed = 11;
  WorkloadGenerator gen(config, MakeStandardCatalog(20, 0.0, 0.05));
  double prev = 0;
  double last = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const StreamRequest req = gen.Next();
    EXPECT_GE(req.arrival_s, prev);
    prev = req.arrival_s;
    last = req.arrival_s;
  }
  // Mean inter-arrival 0.5 s -> ~10000 s for 20000 arrivals.
  EXPECT_NEAR(last / n, 0.5, 0.05);
}

TEST(WorkloadTest, ZipfSkewPrefersPopularTitles) {
  WorkloadConfig config;
  config.zipf_theta = 0.8;
  config.seed = 5;
  WorkloadGenerator gen(config, MakeStandardCatalog(50, 0.0, 0.05));
  std::map<int, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next().object_id];
  EXPECT_GT(counts[0], counts[40] * 2);
}

TEST(WorkloadTest, GenerateUntilHonorsHorizon) {
  WorkloadConfig config;
  config.arrival_rate_per_s = 1.0;
  WorkloadGenerator gen(config, MakeStandardCatalog(5, 0.0, 0.05));
  const std::vector<StreamRequest> reqs = gen.GenerateUntil(100.0);
  EXPECT_GT(reqs.size(), 50u);
  EXPECT_LT(reqs.size(), 200u);
  for (const StreamRequest& req : reqs) EXPECT_LT(req.arrival_s, 100.0);
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  WorkloadConfig config;
  config.seed = 77;
  WorkloadGenerator a(config, MakeStandardCatalog(10, 0.5, 0.05));
  WorkloadGenerator b(config, MakeStandardCatalog(10, 0.5, 0.05));
  for (int i = 0; i < 100; ++i) {
    const StreamRequest ra = a.Next();
    const StreamRequest rb = b.Next();
    EXPECT_EQ(ra.arrival_s, rb.arrival_s);
    EXPECT_EQ(ra.object_id, rb.object_id);
  }
}

}  // namespace
}  // namespace ftms
