#include "server/rebuild_manager.h"

#include <gtest/gtest.h>

#include "server/server.h"

namespace ftms {
namespace {

ServerConfig SmallConfig() {
  ServerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  // Tiny disks so rebuilds finish within a few cycles: 50 tracks.
  config.params.disk.capacity_mb = 2.5;
  return config;
}

MediaObject Movie(int tracks) {
  MediaObject obj;
  obj.id = 0;
  obj.rate_mb_s = 0.1875;
  obj.num_tracks = tracks;
  return obj;
}

TEST(RebuildManagerTest, IdleClusterRebuildsAtFullSpeed) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  ASSERT_TRUE(server->FailDisk(1).ok());
  ASSERT_TRUE(server->StartRebuild(1).ok());
  EXPECT_TRUE(server->rebuild().Active());
  // 50 tracks at 52 idle slots/cycle: done in one cycle.
  server->RunCycles(1);
  EXPECT_FALSE(server->rebuild().Active());
  EXPECT_EQ(server->rebuild().rebuilds_completed(), 1);
  EXPECT_TRUE(server->disks().disk(1).operational());
}

TEST(RebuildManagerTest, BusyClusterRebuildsSlower) {
  ServerConfig config = SmallConfig();
  config.slots_per_disk = 4;  // tight slot budget
  auto server = std::move(MultimediaServer::Create(config).value());
  ASSERT_TRUE(server->AddObject(Movie(400)).ok());
  // Three streams book 3 of the 4 slots on each cluster-0 disk whenever
  // their group is on cluster 0.
  for (int i = 0; i < 3; ++i) server->StartStream(0).value();
  server->RunCycles(3);
  ASSERT_TRUE(server->FailDisk(1).ok());
  ASSERT_TRUE(server->StartRebuild(1).ok());
  server->RunCycles(1);
  EXPECT_TRUE(server->rebuild().Active());  // not instantaneous any more
  EXPECT_GT(server->rebuild().Progress(), 0.0);
  EXPECT_LT(server->rebuild().Progress(), 1.0);
  server->RunCycles(60);
  EXPECT_FALSE(server->rebuild().Active());
  // Streams kept strict priority: no hiccups despite the rebuild.
  EXPECT_EQ(server->scheduler().metrics().hiccups, 0);
}

TEST(RebuildManagerTest, RequiresFailedDisk) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  EXPECT_EQ(server->StartRebuild(1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(server->StartRebuild(-1).ok());
}

TEST(RebuildManagerTest, OneRebuildAtATime) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  server->FailDisk(1).ok();
  server->FailDisk(7).ok();  // different cluster: not catastrophic
  ASSERT_TRUE(server->StartRebuild(1).ok());
  EXPECT_EQ(server->StartRebuild(7).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RebuildManagerTest, CatastrophicClusterCannotRebuildFromParity) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  server->FailDisk(1).ok();
  server->FailDisk(2).ok();  // same cluster: parity path gone
  EXPECT_EQ(server->StartRebuild(1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RebuildManagerTest, SourceFailureMidRebuildStalls) {
  ServerConfig config = SmallConfig();
  config.slots_per_disk = 2;
  auto server = std::move(MultimediaServer::Create(config).value());
  ASSERT_TRUE(server->AddObject(Movie(400)).ok());
  server->StartStream(0).value();
  server->RunCycles(2);
  server->FailDisk(1).ok();
  ASSERT_TRUE(server->StartRebuild(1).ok());
  server->RunCycles(1);
  const int64_t progress = server->rebuild().tracks_rebuilt();
  ASSERT_TRUE(server->rebuild().Active());
  server->FailDisk(2).ok();  // a source dies: rebuild stalls
  server->RunCycles(5);
  EXPECT_EQ(server->rebuild().tracks_rebuilt(), progress);
  server->RepairDisk(2).ok();
  server->RunCycles(60);
  EXPECT_FALSE(server->rebuild().Active());
}

TEST(RebuildManagerTest, AttachedDataPathRegeneratesEveryResidentTrack) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  constexpr int64_t kObjectTracks = 40;
  constexpr size_t kBlockBytes = 256;
  ASSERT_TRUE(server->AddObject(Movie(kObjectTracks)).ok());
  ASSERT_TRUE(server
                  ->mutable_rebuild()
                  .AttachDataPath(0, kObjectTracks, kBlockBytes)
                  .ok());
  // How many of the object's data tracks live on the disk we will fail.
  int64_t resident = 0;
  for (int64_t t = 0; t < kObjectTracks; ++t) {
    if (server->layout().DataLocation(0, t).disk == 1) ++resident;
  }
  ASSERT_GT(resident, 0);
  ASSERT_TRUE(server->FailDisk(1).ok());
  ASSERT_TRUE(server->StartRebuild(1).ok());
  EXPECT_EQ(server->rebuild().data_tracks_pending(), resident);
  server->RunCycles(5);
  ASSERT_FALSE(server->rebuild().Active());
  // Every resident track flowed through the batched reconstruction,
  // byte-verified against the synthesized ground truth.
  EXPECT_EQ(server->rebuild().data_tracks_reconstructed(), resident);
  EXPECT_EQ(server->rebuild().data_tracks_pending(), 0);
  EXPECT_EQ(server->rebuild().data_mismatches(), 0);
  EXPECT_EQ(server->rebuild().data_bytes_reconstructed(),
            resident * static_cast<int64_t>(kBlockBytes));
}

TEST(RebuildManagerTest, AttachDataPathValidatesArguments) {
  auto server = std::move(MultimediaServer::Create(SmallConfig()).value());
  EXPECT_EQ(server->mutable_rebuild().AttachDataPath(0, 0, 64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server->mutable_rebuild().AttachDataPath(0, 10, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(RebuildManagerTest, WorksForImprovedBandwidthLayout) {
  ServerConfig config = SmallConfig();
  config.scheme = Scheme::kImprovedBandwidth;
  config.params.num_disks = 8;
  auto server = std::move(MultimediaServer::Create(config).value());
  server->FailDisk(0).ok();
  ASSERT_TRUE(server->StartRebuild(0).ok());
  server->RunCycles(2);
  EXPECT_FALSE(server->rebuild().Active());
  EXPECT_TRUE(server->disks().disk(0).operational());
}

}  // namespace
}  // namespace ftms
