#include "model/tables.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

// The headline reproduction check: every metric of Tables 2 and 3
// regenerates from the analytical model (with K = 3, see DESIGN.md §4).

void ExpectRowsMatch(const std::vector<SchemeMetrics>& rows,
                     const std::array<SchemeMetrics, 4>& paper) {
  ASSERT_EQ(rows.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(std::string(SchemeName(paper[i].scheme)));
    EXPECT_EQ(rows[i].scheme, paper[i].scheme);
    EXPECT_NEAR(rows[i].storage_overhead_fraction,
                paper[i].storage_overhead_fraction, 0.001);
    EXPECT_NEAR(rows[i].bandwidth_overhead_fraction,
                paper[i].bandwidth_overhead_fraction, 0.001);
    EXPECT_NEAR(rows[i].mttf_years, paper[i].mttf_years,
                paper[i].mttf_years * 0.001);
    EXPECT_NEAR(rows[i].mttds_years, paper[i].mttds_years,
                paper[i].mttds_years * 0.001);
    EXPECT_EQ(rows[i].streams, paper[i].streams);
    EXPECT_DOUBLE_EQ(rows[i].buffer_tracks, paper[i].buffer_tracks);
  }
}

TEST(TablesTest, Table2Regenerates) {
  SystemParameters p;  // Table 1 defaults, K = 3
  const std::vector<SchemeMetrics> rows =
      ComputeComparisonTable(p, 5).value();
  ExpectRowsMatch(rows, PaperTable2());
}

TEST(TablesTest, Table3Regenerates) {
  SystemParameters p;
  const std::vector<SchemeMetrics> rows =
      ComputeComparisonTable(p, 7).value();
  ExpectRowsMatch(rows, PaperTable3());
}

TEST(TablesTest, QualitativeRankingsHold) {
  // The comparisons Section 5 draws from the tables:
  SystemParameters p;
  const std::vector<SchemeMetrics> rows =
      ComputeComparisonTable(p, 5).value();
  const SchemeMetrics& sr = rows[0];
  const SchemeMetrics& sg = rows[1];
  const SchemeMetrics& nc = rows[2];
  const SchemeMetrics& ib = rows[3];
  // IB supports the most streams but is least reliable.
  EXPECT_GT(ib.streams, sr.streams);
  EXPECT_LT(ib.mttf_years, sr.mttf_years);
  // NC needs the least memory; SR the most.
  EXPECT_LT(nc.buffer_tracks, sg.buffer_tracks);
  EXPECT_GT(sr.buffer_tracks, ib.buffer_tracks);
  // NC/IB degrade far later than they lose data.
  EXPECT_GT(nc.mttds_years, nc.mttf_years);
  EXPECT_GT(ib.mttds_years, ib.mttf_years);
  // SR/SG: degradation == catastrophe.
  EXPECT_DOUBLE_EQ(sr.mttds_years, sr.mttf_years);
  EXPECT_DOUBLE_EQ(sg.mttds_years, sg.mttf_years);
}

TEST(TablesTest, FormattingContainsAllSchemes) {
  SystemParameters p;
  const std::vector<SchemeMetrics> rows =
      ComputeComparisonTable(p, 5).value();
  const std::string text = FormatComparisonTable(rows);
  for (Scheme scheme : kAllSchemes) {
    EXPECT_NE(text.find(SchemeName(scheme)), std::string::npos);
  }
  const std::string with_paper =
      FormatComparisonTableWithPaper(rows, PaperTable2());
  EXPECT_NE(with_paper.find("(paper)"), std::string::npos);
  EXPECT_NE(with_paper.find("(ours)"), std::string::npos);
}

}  // namespace
}  // namespace ftms
