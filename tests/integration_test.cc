#include <gtest/gtest.h>

#include <map>

#include "reliability/failure_process.h"
#include "server/server.h"
#include "sim/simulator.h"
#include "stream/workload.h"
#include "util/units.h"

namespace ftms {
namespace {

// End-to-end runs combining the workload generator, the server facade and
// failure injection — the system-level behaviors the paper argues for.

ServerConfig MediumConfig(Scheme scheme) {
  ServerConfig config;
  config.scheme = scheme;
  config.parity_group_size = 5;
  config.params.num_disks = scheme == Scheme::kImprovedBandwidth ? 20 : 20;
  config.params.k_reserve = 2;
  return config;
}

TEST(IntegrationTest, WorkloadDrivenDayAtTheServer) {
  for (Scheme scheme : kAllSchemes) {
    auto server =
        std::move(MultimediaServer::Create(MediumConfig(scheme)).value());
    // Short synthetic "movies" so streams turn over within the test.
    std::vector<MediaObject> catalog;
    for (int i = 0; i < 8; ++i) {
      MediaObject obj;
      obj.id = i;
      obj.name = "clip_" + std::to_string(i);
      obj.rate_mb_s = 0.1875;
      obj.num_tracks = 40;
      catalog.push_back(obj);
      ASSERT_TRUE(server->AddObject(obj).ok());
    }
    WorkloadConfig wconfig;
    wconfig.arrival_rate_per_s = 0.5;
    wconfig.seed = 17;
    WorkloadGenerator workload(wconfig, catalog);

    // Interleave arrivals with scheduling cycles.
    const double cycle_s = server->scheduler().CycleSeconds();
    std::vector<StreamRequest> requests = workload.GenerateUntil(200.0);
    size_t next = 0;
    int admitted = 0;
    while (server->NowSeconds() < 300.0) {
      while (next < requests.size() &&
             requests[next].arrival_s <= server->NowSeconds()) {
        if (server->StartStream(requests[next].object_id).ok()) {
          ++admitted;
        }
        ++next;
      }
      server->RunCycles(1);
      (void)cycle_s;
    }
    server->RunCycles(200);  // drain
    EXPECT_GT(admitted, 10) << SchemeName(scheme);
    EXPECT_EQ(server->scheduler().metrics().hiccups, 0)
        << SchemeName(scheme);
    int completed = 0;
    for (const auto& s : server->scheduler().streams()) {
      if (s->state() == StreamState::kCompleted) ++completed;
    }
    EXPECT_GT(completed, 0) << SchemeName(scheme);
  }
}

TEST(IntegrationTest, FailureDuringBusyPeriodMaskedBySrAndSg) {
  for (Scheme scheme :
       {Scheme::kStreamingRaid, Scheme::kStaggeredGroup}) {
    auto server =
        std::move(MultimediaServer::Create(MediumConfig(scheme)).value());
    MediaObject obj;
    obj.id = 0;
    obj.rate_mb_s = 0.1875;
    obj.num_tracks = 160;
    ASSERT_TRUE(server->AddObject(obj).ok());
    for (int i = 0; i < 12; ++i) server->StartStream(0).value();
    server->RunCycles(10);
    ASSERT_TRUE(server->FailDisk(3).ok());
    server->RunCycles(400);
    EXPECT_EQ(server->scheduler().metrics().hiccups, 0)
        << SchemeName(scheme);
    EXPECT_GT(server->scheduler().metrics().reconstructed, 0)
        << SchemeName(scheme);
  }
}

TEST(IntegrationTest, SimDrivenFailuresAndRepairsKeepSrServing) {
  // Couple the event-driven failure process to the cycle scheduler: very
  // unreliable disks fail and repair while streams play; SR masks every
  // single-failure episode (no two concurrent failures share a cluster
  // in this seeded run).
  auto server = std::move(
      MultimediaServer::Create(MediumConfig(Scheme::kStreamingRaid))
          .value());
  MediaObject obj;
  obj.id = 0;
  obj.rate_mb_s = 0.1875;
  obj.num_tracks = 400;
  ASSERT_TRUE(server->AddObject(obj).ok());
  for (int i = 0; i < 6; ++i) server->StartStream(0).value();

  Simulator sim;
  DiskParameters flaky = server->config().params.disk;
  flaky.mttf_hours = 0.2;    // absurdly flaky: several failures per run
  flaky.mttr_hours = 0.002;  // ~7-second swap
  DiskArray shadow = std::move(
      DiskArray::Create(server->config().params.num_disks, 5, flaky)
          .value());
  int episodes = 0;
  FailureProcess process(
      &sim, &shadow, /*seed=*/3,
      {.on_failure =
           [&](int disk) {
             if (shadow.NumFailed() == 1) {
               server->FailDisk(disk).ok();
               ++episodes;
             }
           },
       .on_repair = [&](int disk) { server->RepairDisk(disk).ok(); }});
  process.Start();

  const double cycle_s = server->scheduler().CycleSeconds();
  for (int c = 0; c < 500; ++c) {
    sim.RunUntil(static_cast<double>(c) * cycle_s);
    server->RunCycles(1);
  }
  EXPECT_GT(episodes, 2);
  EXPECT_EQ(server->scheduler().metrics().hiccups, 0);
}

TEST(IntegrationTest, CatalogChurnUnderCapacityPressure) {
  auto server = std::move(
      MultimediaServer::Create(MediumConfig(Scheme::kNonClustered))
          .value());
  // Fill the working set, then churn: purge cold titles for new ones.
  int added = 0;
  for (int i = 0; i < 1000; ++i) {
    MediaObject obj;
    obj.id = i;
    obj.rate_mb_s = 0.1875;
    obj.num_tracks = 4000;
    if (!server->AddObject(obj).ok()) break;
    ++added;
  }
  EXPECT_GT(added, 2);
  EXPECT_EQ(server->StartStream(0).ok(), true);
  // Cold title replacement.
  ASSERT_TRUE(server->RemoveObject(added - 1).ok());
  MediaObject fresh;
  fresh.id = 5000;
  fresh.rate_mb_s = 0.1875;
  fresh.num_tracks = 4000;
  EXPECT_TRUE(server->AddObject(fresh).ok());
  server->RunCycles(50);
  EXPECT_EQ(server->scheduler().metrics().hiccups, 0);
}

}  // namespace
}  // namespace ftms
