#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/units.h"

namespace ftms {
namespace {

ServerConfig SmallConfig(Scheme scheme) {
  ServerConfig config;
  config.scheme = scheme;
  config.parity_group_size = 5;
  config.params.num_disks =
      scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  config.params.k_reserve = 2;
  return config;
}

MediaObject SmallMovie(int id) {
  MediaObject obj;
  obj.id = id;
  obj.name = "movie_" + std::to_string(id);
  obj.rate_mb_s = 0.1875;
  obj.num_tracks = 64;
  return obj;
}

TEST(ServerTest, CreateValidatesConfig) {
  ServerConfig config = SmallConfig(Scheme::kStreamingRaid);
  EXPECT_TRUE(MultimediaServer::Create(config).ok());
  config.parity_group_size = 1;
  EXPECT_FALSE(MultimediaServer::Create(config).ok());
  config = SmallConfig(Scheme::kStreamingRaid);
  config.params.num_disks = 11;  // not a multiple of C
  EXPECT_FALSE(MultimediaServer::Create(config).ok());
}

TEST(ServerTest, EndToEndPlayback) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  ASSERT_TRUE(server->AddObject(SmallMovie(1)).ok());
  const StreamId id = server->StartStream(1).value();
  server->RunCycles(20);
  const Stream* s = server->scheduler().FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 0);
  EXPECT_GT(server->NowSeconds(), 0.0);
  EXPECT_NE(server->Summary().find("hiccups 0"), std::string::npos);
}

TEST(ServerTest, AdmissionReleasesOnCompletion) {
  ServerConfig config = SmallConfig(Scheme::kStreamingRaid);
  config.admission_override = 2;
  auto server = std::move(MultimediaServer::Create(config).value());
  ASSERT_TRUE(server->AddObject(SmallMovie(1)).ok());
  EXPECT_TRUE(server->StartStream(1).ok());
  EXPECT_TRUE(server->StartStream(1).ok());
  EXPECT_EQ(server->StartStream(1).status().code(),
            StatusCode::kResourceExhausted);
  server->RunCycles(25);  // both streams complete
  EXPECT_EQ(server->admission().active(), 0);
  EXPECT_TRUE(server->StartStream(1).ok());
}

TEST(ServerTest, UnknownObjectRejected) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  EXPECT_EQ(server->StartStream(42).status().code(),
            StatusCode::kNotFound);
}

TEST(ServerTest, WrongRateObjectRejected) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  MediaObject obj = SmallMovie(1);
  obj.rate_mb_s = kMpeg2RateMbS;
  EXPECT_EQ(server->AddObject(obj).code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, PurgeRequiresNoActiveStreams) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  ASSERT_TRUE(server->AddObject(SmallMovie(1)).ok());
  server->StartStream(1).value();
  EXPECT_EQ(server->RemoveObject(1).code(),
            StatusCode::kFailedPrecondition);
  server->RunCycles(25);
  EXPECT_TRUE(server->RemoveObject(1).ok());
}

TEST(ServerTest, FailureInjectionAndCatastropheDetection) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  EXPECT_FALSE(server->FailDisk(-1).ok());
  EXPECT_TRUE(server->FailDisk(0).ok());
  EXPECT_FALSE(server->CatastrophicFailure());
  EXPECT_TRUE(server->FailDisk(1).ok());  // same cluster
  EXPECT_TRUE(server->CatastrophicFailure());
  EXPECT_TRUE(server->RepairDisk(1).ok());
  EXPECT_FALSE(server->CatastrophicFailure());
}

TEST(ServerTest, IbAdjacentClusterCatastrophe) {
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kImprovedBandwidth))
          .value());
  EXPECT_TRUE(server->FailDisk(0).ok());   // cluster 0
  EXPECT_FALSE(server->CatastrophicFailure());
  EXPECT_TRUE(server->FailDisk(5).ok());   // cluster 1 (adjacent)
  EXPECT_TRUE(server->CatastrophicFailure());
}

TEST(ServerTest, StatusLinePinsItsFormat) {
  EventJournal journal;
  QosLedger ledger;
  ledger.set_journal(&journal);
  ServerConfig config = SmallConfig(Scheme::kNonClustered);
  config.nc_transition = NcTransition::kImmediateShift;
  config.slots_per_disk = 1;
  config.journal = &journal;
  config.ledger = &ledger;
  auto server = std::move(MultimediaServer::Create(config).value());
  // The Figure 6 drill: three streams staggered on cluster 0 (even
  // object ids), so failing disk 2 mid-group is guaranteed to hiccup.
  for (int id = 2; id <= 6; id += 2) {
    ASSERT_TRUE(server->AddObject(SmallMovie(id)).ok());
    server->StartStream(id).value();
    server->RunCycles(1);
  }

  // Clean run: StatusLine is Summary plus the two QoS fields, zeroed.
  std::string line = server->StatusLine();
  EXPECT_EQ(line.find(server->Summary()), 0u);
  EXPECT_NE(line.find(", worst-stream hiccups 0"), std::string::npos);
  EXPECT_NE(line.find(", slo breaches 0"), std::string::npos);

  // A strict zero-hiccup SLO plus an NC transition: the worst stream and
  // the breach count both surface in the line.
  ledger.SetSlos({{"zero_hiccups", SloKind::kMaxHiccupsPerStream, 0.0,
                   /*per_failure=*/false}});
  ASSERT_TRUE(server->FailDisk(2).ok());
  server->RunCycles(12);
  line = server->StatusLine();
  int64_t worst = 0;
  for (const auto& stream : server->scheduler().streams()) {
    worst = std::max(worst, stream->hiccup_count());
  }
  EXPECT_GT(worst, 0);
  EXPECT_NE(line.find(", worst-stream hiccups " + std::to_string(worst)),
            std::string::npos);
  EXPECT_NE(line.find(", slo breaches 1"), std::string::npos);
}

TEST(ServerTest, StatusLineWorksWithoutALedger) {
  // QoS off (no FTMS_QOS, no injected sinks): StatusLine falls back to
  // an on-the-fly evaluation against the scheme's default SLOs.
  auto server = std::move(
      MultimediaServer::Create(SmallConfig(Scheme::kStreamingRaid))
          .value());
  ASSERT_TRUE(server->AddObject(SmallMovie(1)).ok());
  server->StartStream(1).value();
  server->RunCycles(5);
  const std::string line = server->StatusLine();
  EXPECT_NE(line.find("worst-stream hiccups 0"), std::string::npos);
  EXPECT_NE(line.find("slo breaches 0"), std::string::npos);
}

TEST(ServerTest, AllSchemesServeCleanly) {
  for (Scheme scheme : kAllSchemes) {
    auto server =
        std::move(MultimediaServer::Create(SmallConfig(scheme)).value());
    ASSERT_TRUE(server->AddObject(SmallMovie(1)).ok());
    const StreamId id = server->StartStream(1).value();
    server->RunCycles(80);
    const Stream* s = server->scheduler().FindStream(id);
    EXPECT_EQ(s->state(), StreamState::kCompleted) << SchemeName(scheme);
    EXPECT_EQ(s->hiccup_count(), 0) << SchemeName(scheme);
  }
}

}  // namespace
}  // namespace ftms
