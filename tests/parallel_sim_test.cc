#include <gtest/gtest.h>

#include "reliability/markov_sim.h"

namespace ftms {
namespace {

// The contract behind the parallel Monte-Carlo engine: trial i runs on its
// own RNG stream derived only from (seed, i), and the per-trial results
// are folded in trial order — so the estimate is BIT-identical no matter
// how many worker threads computed it.

ReliabilitySimConfig BaseConfig() {
  ReliabilitySimConfig config;
  config.num_disks = 40;
  config.parity_group_size = 5;
  config.mttf_hours = 800.0;
  config.mttr_hours = 8.0;
  config.trials = 120;
  config.seed = 4242;
  return config;
}

TEST(ParallelSimTest, CatastrophicEstimateIdenticalAcrossThreadCounts) {
  ReliabilitySimConfig config = BaseConfig();
  config.threads = 1;
  const ReliabilityEstimate one = EstimateMttfCatastrophic(config).value();
  for (int threads : {2, 8}) {
    config.threads = threads;
    const ReliabilityEstimate est =
        EstimateMttfCatastrophic(config).value();
    EXPECT_EQ(est.mean_hours, one.mean_hours) << threads << " threads";
    EXPECT_EQ(est.ci95_hours, one.ci95_hours) << threads << " threads";
    EXPECT_EQ(est.trials, one.trials);
  }
}

TEST(ParallelSimTest, KConcurrentIdenticalAcrossThreadCounts) {
  ReliabilitySimConfig config = BaseConfig();
  config.threads = 1;
  const double one = EstimateKConcurrent(config, 3)->mean_hours;
  for (int threads : {2, 8}) {
    config.threads = threads;
    EXPECT_EQ(EstimateKConcurrent(config, 3)->mean_hours, one)
        << threads << " threads";
  }
}

TEST(ParallelSimTest, KDegradedClustersIdenticalAcrossThreadCounts) {
  ReliabilitySimConfig config = BaseConfig();
  config.threads = 1;
  const double one = EstimateKDegradedClusters(config, 2)->mean_hours;
  for (int threads : {2, 8}) {
    config.threads = threads;
    EXPECT_EQ(EstimateKDegradedClusters(config, 2)->mean_hours, one)
        << threads << " threads";
  }
}

TEST(ParallelSimTest, ImprovedBandwidthSchemeIdenticalAcrossThreadCounts) {
  // IB uses a different cluster geometry (C-1 disks) and the adjacency
  // stop rule; cover it separately.
  ReliabilitySimConfig config = BaseConfig();
  config.scheme = Scheme::kImprovedBandwidth;
  config.threads = 1;
  const double one = EstimateMttfCatastrophic(config)->mean_hours;
  config.threads = 8;
  EXPECT_EQ(EstimateMttfCatastrophic(config)->mean_hours, one);
}

TEST(ParallelSimTest, SeedStillSelectsTheExperiment) {
  ReliabilitySimConfig config = BaseConfig();
  config.threads = 8;
  const double a = EstimateMttfCatastrophic(config)->mean_hours;
  config.seed = 4243;
  const double b = EstimateMttfCatastrophic(config)->mean_hours;
  EXPECT_NE(a, b);
}

TEST(ParallelSimTest, RejectsNegativeThreads) {
  ReliabilitySimConfig config = BaseConfig();
  config.threads = -1;
  EXPECT_FALSE(EstimateMttfCatastrophic(config).ok());
}

}  // namespace
}  // namespace ftms
