#include "stream/batching.h"

#include <gtest/gtest.h>

#include "stream/workload.h"
#include "util/random.h"

namespace ftms {
namespace {

TEST(BatchingTest, ViewersWithinWindowShareABatch) {
  BatchCoordinator batching(/*window_s=*/60.0);
  batching.Add(7, 0.0);
  batching.Add(7, 10.0);
  batching.Add(7, 59.0);
  EXPECT_TRUE(batching.TakeDue(30.0).empty());  // window still open
  const auto due = batching.TakeDue(60.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].object_id, 7);
  EXPECT_EQ(due[0].viewers, 3);
  EXPECT_EQ(batching.streams_saved(), 2);
}

TEST(BatchingTest, DifferentTitlesDifferentBatches) {
  BatchCoordinator batching(10.0);
  batching.Add(1, 0.0);
  batching.Add(2, 1.0);
  batching.Add(1, 2.0);
  EXPECT_EQ(batching.pending_batches(), 2u);
  const auto due = batching.TakeDue(20.0);
  EXPECT_EQ(due.size(), 2u);
  EXPECT_EQ(batching.batches_launched(), 2);
  EXPECT_EQ(batching.viewers_total(), 3);
}

TEST(BatchingTest, LateArrivalOpensNewBatch) {
  BatchCoordinator batching(10.0);
  batching.Add(1, 0.0);
  batching.TakeDue(10.0);
  batching.Add(1, 11.0);  // after the first batch launched
  EXPECT_EQ(batching.pending_batches(), 1u);
  const auto due = batching.TakeDue(21.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].viewers, 1);
}

TEST(BatchingTest, ZeroWindowIsOneStreamPerViewer) {
  BatchCoordinator batching(0.0);
  batching.Add(1, 5.0);
  const auto due = batching.TakeDue(5.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(batching.streams_saved(), 0);
}

TEST(BatchingTest, ZipfWorkloadSavesManyStreams) {
  // With a skewed catalog and a 5-minute window, batching folds a large
  // share of viewers of popular titles into shared streams — the
  // economies-of-scale argument of the paper's introduction.
  WorkloadConfig config;
  config.arrival_rate_per_s = 0.2;  // one viewer every 5 s
  config.zipf_theta = 0.8;
  config.seed = 9;
  WorkloadGenerator workload(config, MakeStandardCatalog(50, 0.0, 0.05));
  BatchCoordinator batching(/*window_s=*/300.0);
  double now = 0;
  for (const StreamRequest& req : workload.GenerateUntil(20000.0)) {
    now = req.arrival_s;
    batching.TakeDue(now);
    batching.Add(req.object_id, now);
  }
  batching.TakeDue(now + 301.0);
  EXPECT_EQ(batching.pending_batches(), 0u);
  const double saved_fraction =
      static_cast<double>(batching.streams_saved()) /
      static_cast<double>(batching.viewers_total());
  EXPECT_GT(saved_fraction, 0.25);
  EXPECT_LT(saved_fraction, 0.95);
}

}  // namespace
}  // namespace ftms
