#include "verify/scrub.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(ScrubTest, CleanObjectHasNoMismatches) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const ScrubReport report =
      ScrubObject(*layout, 0, /*object_tracks=*/18, 64).value();
  EXPECT_EQ(report.groups_checked, 5);  // 18 tracks = 4 full + 1 short
  EXPECT_EQ(report.blocks_read, 18 + 5);
  EXPECT_EQ(report.parity_mismatches, 0);
}

TEST(ScrubTest, DetectsSingleLatentError) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  // Flip one bit in every block stored on disk 2: every group whose
  // data touches disk 2 must scream.
  int corrupted_blocks = 0;
  const ScrubReport report =
      ScrubObject(*layout, 0, 16, 64,
                  [&](int disk, bool, Block& block) {
                    if (disk == 2) {
                      block[0] = static_cast<uint8_t>(block[0] ^ 1);
                      ++corrupted_blocks;
                    }
                  })
          .value();
  // Object 0's groups alternate clusters 0/1; disk 2 carries position 2
  // of the cluster-0 groups: 2 of the 4 groups are affected.
  EXPECT_EQ(report.parity_mismatches, 2);
  EXPECT_EQ(corrupted_blocks, 2);
}

TEST(ScrubTest, DetectsParityBlockCorruption) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const ScrubReport report =
      ScrubObject(*layout, 0, 16, 64,
                  [](int, bool is_parity, Block& block) {
                    if (is_parity) {
                      block.back() = static_cast<uint8_t>(
                          block.back() ^ 0x80);
                    }
                  })
          .value();
  EXPECT_EQ(report.parity_mismatches, report.groups_checked);
}

TEST(ScrubTest, DoubleCorruptionInOneGroupCanCancel) {
  // XOR parity catches any ODD number of flipped blocks per group; an
  // identical flip in two blocks cancels — the classic scrub blind spot
  // (why production systems also checksum per block).
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  const ScrubReport report =
      ScrubObject(*layout, 0, 4, 64,
                  [](int disk, bool, Block& block) {
                    if (disk == 0 || disk == 1) {
                      block[5] = static_cast<uint8_t>(block[5] ^ 0xff);
                    }
                  })
          .value();
  EXPECT_EQ(report.parity_mismatches, 0);
}

TEST(ScrubTest, WorksForImprovedBandwidthLayout) {
  auto layout = CreateLayout(Scheme::kImprovedBandwidth, 8, 5).value();
  const ScrubReport clean = ScrubObject(*layout, 1, 20, 32).value();
  EXPECT_EQ(clean.parity_mismatches, 0);
  EXPECT_EQ(clean.groups_checked, 5);
}

TEST(ScrubTest, RejectsEmptyObject) {
  auto layout = CreateLayout(Scheme::kStreamingRaid, 10, 5).value();
  EXPECT_FALSE(ScrubObject(*layout, 0, 0, 64).ok());
}

}  // namespace
}  // namespace ftms
