#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// Golden end-to-end metrics for the five bench_full_farm runs (Table 1
// scale: D = 100, C = 5, ~1000 streams, one mid-cycle failure + repair).
// The values were captured from the pre-optimization scheduler (ordered
// std::set bookkeeping, per-cycle allocations); the allocation-free hot
// path must reproduce every counter EXACTLY. If an intentional scheduling
// change moves these numbers, re-capture and update the table — never
// loosen the comparison.

struct GoldenRow {
  Scheme scheme;
  int c;
  int disks;
  int streams;
  int stagger_every;
  SchedulerMetrics want;
  int64_t want_buffer_peak;
};

SchedulerMetrics Metrics(int64_t cycles, int64_t data_reads,
                         int64_t parity_reads, int64_t failed_reads,
                         int64_t dropped_reads, int64_t tracks_delivered,
                         int64_t hiccups, int64_t reconstructed,
                         int64_t degradation_events, int64_t shift_cascades,
                         int64_t max_shift_depth) {
  SchedulerMetrics m;
  m.cycles = cycles;
  m.data_reads = data_reads;
  m.parity_reads = parity_reads;
  m.failed_reads = failed_reads;
  m.dropped_reads = dropped_reads;
  m.tracks_delivered = tracks_delivered;
  m.hiccups = hiccups;
  m.reconstructed = reconstructed;
  m.degradation_events = degradation_events;
  m.shift_cascades = shift_cascades;
  m.max_shift_depth = max_shift_depth;
  return m;
}

std::vector<GoldenRow> GoldenRows() {
  return {
      {Scheme::kStreamingRaid, 5, 100, 1040, 0,
       Metrics(70, 289640, 72800, 1560, 0, 287040, 0, 1560, 0, 0, 0),
       10400},
      {Scheme::kStaggeredGroup, 5, 100, 960, 0,
       Metrics(70, 66840, 16800, 360, 0, 64800, 0, 360, 0, 0, 0), 4560},
      {Scheme::kNonClustered, 5, 100, 960, 12,
       Metrics(150, 105684, 348, 0, 36, 105072, 48, 348, 0, 0, 0), 1980},
      {Scheme::kImprovedBandwidth, 5, 96, 960, 0,
       Metrics(70, 266208, 2552, 40, 0, 264920, 40, 2552, 0, 1392, 3),
       7680},
      {Scheme::kImprovedBandwidth, 5, 96, 1200, 0,
       Metrics(70, 317158, 18734, 50, 0, 331092, 108, 18734, 58, 17342, 23),
       9600},
  };
}

TEST(GoldenMetricsTest, FullFarmRunsMatchPreRewriteMetrics) {
  for (const GoldenRow& row : GoldenRows()) {
    SCOPED_TRACE(std::string(SchemeName(row.scheme)) + " x " +
                 std::to_string(row.streams));
    SchedRig rig = MakeRig(row.scheme, row.c, row.disks);
    const int clusters = rig.layout->num_clusters();
    for (int i = 0; i < row.streams; ++i) {
      rig.sched->AddStream(TestObject(i % clusters, 100000)).value();
      if (row.stagger_every > 0 &&
          i % row.stagger_every == row.stagger_every - 1) {
        rig.sched->RunCycle();
      }
    }
    rig.sched->RunCycles(30);
    rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
    rig.sched->RunCycles(30);
    rig.sched->OnDiskRepaired(1);
    rig.sched->RunCycles(10);

    const SchedulerMetrics& m = rig.sched->metrics();
    EXPECT_EQ(m.cycles, row.want.cycles);
    EXPECT_EQ(m.data_reads, row.want.data_reads);
    EXPECT_EQ(m.parity_reads, row.want.parity_reads);
    EXPECT_EQ(m.failed_reads, row.want.failed_reads);
    EXPECT_EQ(m.dropped_reads, row.want.dropped_reads);
    EXPECT_EQ(m.tracks_delivered, row.want.tracks_delivered);
    EXPECT_EQ(m.hiccups, row.want.hiccups);
    EXPECT_EQ(m.reconstructed, row.want.reconstructed);
    EXPECT_EQ(m.terminated_streams, 0);
    EXPECT_EQ(m.degradation_events, row.want.degradation_events);
    EXPECT_EQ(m.shift_cascades, row.want.shift_cascades);
    EXPECT_EQ(m.max_shift_depth, row.want.max_shift_depth);
    EXPECT_EQ(rig.sched->buffer_pool().peak_in_use(), row.want_buffer_peak);
  }
}

}  // namespace
}  // namespace ftms
