#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "tests/sched_test_util.h"
#include "util/random.h"

namespace ftms {
namespace {

// Failure-injection fuzzing: random admissions, failures and repairs
// against every scheme, asserting the structural invariants that must
// hold no matter what:
//  * the real-time clock never stalls (delivered + hiccups accounts for
//    every due track),
//  * buffer accounting conserves (pool drains to zero once idle),
//  * hiccups only ever happen while or after a disk is down.

class FailureFuzz
    : public ::testing::TestWithParam<std::tuple<Scheme, int, uint64_t>> {
};

TEST_P(FailureFuzz, InvariantsHoldUnderRandomFailures) {
  const auto [scheme, c, seed] = GetParam();
  Rng rng(seed ^ static_cast<uint64_t>(c) * 1315423911ull);
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * 3;
  RigOptions options;
  options.nc_transition = rng.Bernoulli(0.5)
                              ? NcTransition::kImmediateShift
                              : NcTransition::kDeferredRead;
  SchedRig rig = MakeRig(scheme, c, disks, options);

  std::set<int> down;
  int64_t expected_tracks = 0;
  bool ever_failed = false;
  int64_t hiccups_before_first_failure = -1;

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.08 && rig.sched->ActiveStreams() < 24) {
      const int64_t tracks =
          (c - 1) * (1 + static_cast<int64_t>(rng.UniformInt(10)));
      rig.sched
          ->AddStream(TestObject(static_cast<int>(rng.UniformInt(9)),
                                 tracks))
          .value();
      expected_tracks += tracks;
    } else if (roll < 0.12 && static_cast<int>(down.size()) < 2) {
      const int disk = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(disks)));
      if (down.insert(disk).second) {
        if (!ever_failed) {
          hiccups_before_first_failure = rig.sched->metrics().hiccups;
        }
        ever_failed = true;
        rig.sched->OnDiskFailed(disk, rng.Bernoulli(0.3));
      }
    } else if (roll < 0.16 && !down.empty()) {
      const int disk = *down.begin();
      down.erase(down.begin());
      rig.sched->OnDiskRepaired(disk);
    }
    rig.sched->RunCycle();
  }
  // Repair everything and drain.
  for (int disk : down) rig.sched->OnDiskRepaired(disk);
  rig.sched->RunCycles(600);

  // Every admitted track was either delivered on time or logged as a
  // hiccup — playback clocks never stalled.
  int64_t accounted = 0;
  for (const auto& s : rig.sched->streams()) {
    EXPECT_EQ(s->state(), StreamState::kCompleted);
    accounted += s->delivered_tracks() + s->hiccup_count();
  }
  EXPECT_EQ(accounted, expected_tracks);
  EXPECT_EQ(rig.sched->metrics().tracks_delivered +
                rig.sched->metrics().hiccups,
            expected_tracks);

  // Buffer conservation: all track buffers returned once idle.
  EXPECT_EQ(rig.sched->buffer_pool().in_use(), 0)
      << SchemeName(scheme) << " seed " << seed;

  // No hiccups can precede the first failure.
  if (hiccups_before_first_failure >= 0) {
    EXPECT_EQ(hiccups_before_first_failure, 0);
  }
  if (!ever_failed) {
    EXPECT_EQ(rig.sched->metrics().hiccups, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesGroupsSeeds, FailureFuzz,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kStaggeredGroup,
                                         Scheme::kNonClustered,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Values(3, 5, 7),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)));

}  // namespace
}  // namespace ftms
