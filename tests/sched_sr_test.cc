#include "sched/streaming_raid_scheduler.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

constexpr int kC = 5;
constexpr int kDisks = 10;  // two clusters, as in Figure 3

TEST(StreamingRaidTest, DeliversWholeObjectWithoutFailures) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(6);  // 1 startup read + 4 delivery cycles + slack
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks(), 16);
  EXPECT_EQ(s->hiccup_count(), 0);
}

TEST(StreamingRaidTest, StartupLatencyIsOneCycle) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycle();  // read cycle, nothing delivered yet
  EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), 0);
  rig.sched->RunCycle();  // first group delivered
  EXPECT_EQ(rig.sched->FindStream(id)->delivered_tracks(), kC - 1);
}

TEST(StreamingRaidTest, ParityIsReadEveryCycle) {
  // Bandwidth is sacrificed in normal mode: one parity read per stream
  // per cycle (the 1/C overhead of equation (2)).
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(4);
  EXPECT_EQ(rig.sched->metrics().parity_reads, 4);
  EXPECT_EQ(rig.sched->metrics().data_reads, 16);
}

TEST(StreamingRaidTest, SingleDataDiskFailureIsMasked) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 32)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);
  rig.sched->RunCycles(10);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->hiccup_count(), 0);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
}

TEST(StreamingRaidTest, MidCycleFailureAlsoMasked) {
  // The parity block is read concurrently with the data, so even a
  // failure inside the sweep is reconstructed (Section 2).
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 32)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  rig.sched->RunCycles(10);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(StreamingRaidTest, ParityDiskFailureIsHarmless) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 32)).value();
  rig.sched->OnDiskFailed(4, /*mid_cycle=*/false);  // cluster 0 parity
  rig.sched->RunCycles(12);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(StreamingRaidTest, TwoFailuresInClusterAreCatastrophic) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 32)).value();
  rig.sched->OnDiskFailed(1, false);
  rig.sched->OnDiskFailed(2, false);
  rig.sched->RunCycles(12);
  // Two missing blocks per affected group cannot be rebuilt from one
  // parity block: hiccups on every pass over cluster 0.
  EXPECT_GT(rig.sched->FindStream(id)->hiccup_count(), 0);
  EXPECT_TRUE(rig.disks->HasCatastrophicClusterFailure());
}

TEST(StreamingRaidTest, FailuresInDistinctClustersAreMasked) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 32)).value();
  rig.sched->OnDiskFailed(1, false);  // cluster 0
  rig.sched->OnDiskFailed(7, false);  // cluster 1
  rig.sched->RunCycles(12);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0);
}

TEST(StreamingRaidTest, RepairRestoresNormalReads) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->OnDiskFailed(1, false);
  rig.sched->RunCycles(4);
  const int64_t reconstructed_before =
      rig.sched->metrics().reconstructed;
  rig.sched->OnDiskRepaired(1);
  rig.sched->RunCycles(8);
  EXPECT_EQ(rig.sched->metrics().reconstructed, reconstructed_before);
}

TEST(StreamingRaidTest, BufferPeakIsTwoCPerStream) {
  // Equation (12): 2C buffers per stream (group being read + group being
  // transmitted, parity included).
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  rig.sched->AddStream(TestObject(0, 400)).value();
  rig.sched->AddStream(TestObject(2, 400)).value();
  rig.sched->RunCycles(10);
  EXPECT_EQ(rig.sched->buffer_pool().peak_in_use(), 2 * kC * 2);
}

TEST(StreamingRaidTest, ShortFinalGroupDelivered) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  const StreamId id = rig.sched->AddStream(TestObject(0, 10)).value();
  rig.sched->RunCycles(5);  // 10 tracks = 2.5 groups
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks(), 10);
}

TEST(StreamingRaidTest, RateMismatchRejected) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, kC, kDisks);
  MediaObject wrong = TestObject(0, 16, /*rate_mb_s=*/0.5);
  EXPECT_EQ(rig.sched->AddStream(wrong).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ftms
