#include <gtest/gtest.h>

#include "reliability/markov_sim.h"
#include "util/thread_pool.h"

namespace ftms {
namespace {

// Tier-1 smoke for the parallel simulation engine (ctest label
// `perf_smoke`): a tiny reliability sim actually dispatched over the
// shared pool, so the pool + ParallelFor + per-trial RNG plumbing is
// exercised on every test run, not only when someone runs the benches.

TEST(PerfSmokeTest, ParallelReliabilitySimRuns) {
  ReliabilitySimConfig config;
  config.num_disks = 20;
  config.parity_group_size = 5;
  config.mttf_hours = 500.0;
  config.mttr_hours = 5.0;
  config.trials = 64;
  config.threads = 4;  // force pool dispatch even on 1-CPU machines
  const ReliabilityEstimate est = EstimateMttfCatastrophic(config).value();
  EXPECT_EQ(est.trials, config.trials);
  EXPECT_GT(est.mean_hours, 0);
  EXPECT_GT(est.ci95_hours, 0);

  // And the same workload through the default-thread path (FTMS_THREADS /
  // hardware concurrency) must give the same bits.
  ReliabilitySimConfig defaulted = config;
  defaulted.threads = 0;
  EXPECT_EQ(EstimateMttfCatastrophic(defaulted)->mean_hours,
            est.mean_hours);
}

}  // namespace
}  // namespace ftms
