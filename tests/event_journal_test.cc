#include "qos/event_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/sched_test_util.h"

namespace ftms {
namespace {

QosEvent MakeEvent(QosEventKind kind) {
  QosEvent e;
  e.kind = kind;
  e.scheme = "SR";
  e.sim_us = 1500000;
  e.cycle = 3;
  e.disk = 2;
  e.cluster = 0;
  e.value = 1;
  return e;
}

TEST(EventJournalTest, KindNamesAreStable) {
  EXPECT_EQ(QosEventKindName(QosEventKind::kDiskFailed), "disk_failed");
  EXPECT_EQ(QosEventKindName(QosEventKind::kDiskRepaired), "disk_repaired");
  EXPECT_EQ(QosEventKindName(QosEventKind::kDegradedTransitionStart),
            "degraded_transition_start");
  EXPECT_EQ(QosEventKindName(QosEventKind::kDegradedTransitionEnd),
            "degraded_transition_end");
  EXPECT_EQ(QosEventKindName(QosEventKind::kRebuildStart), "rebuild_start");
  EXPECT_EQ(QosEventKindName(QosEventKind::kRebuildProgress),
            "rebuild_progress");
  EXPECT_EQ(QosEventKindName(QosEventKind::kRebuildDone), "rebuild_done");
  EXPECT_EQ(QosEventKindName(QosEventKind::kHiccups), "hiccups");
  EXPECT_EQ(QosEventKindName(QosEventKind::kAdmissionRejected),
            "admission_rejected");
  EXPECT_EQ(QosEventKindName(QosEventKind::kSloBreach), "slo_breach");
  EXPECT_EQ(QosEventKindName(QosEventKind::kSimHorizon), "sim_horizon");
}

TEST(EventJournalTest, JsonlLineHasFixedFieldOrder) {
  EventJournal journal;
  journal.Append(MakeEvent(QosEventKind::kDiskFailed));
  EXPECT_EQ(journal.ToJsonl(),
            "{\"kind\":\"disk_failed\",\"scheme\":\"SR\",\"sim_us\":1500000,"
            "\"cycle\":3,\"disk\":2,\"cluster\":0,\"stream\":-1,"
            "\"value\":1}\n");
}

TEST(EventJournalTest, SnapshotCountClearRoundTrip) {
  EventJournal journal;
  journal.Append(MakeEvent(QosEventKind::kDiskFailed));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.CountOf(QosEventKind::kHiccups), 2);
  EXPECT_EQ(journal.CountOf(QosEventKind::kRebuildDone), 0);
  const auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], MakeEvent(QosEventKind::kDiskFailed));
  journal.Clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.ToJsonl(), "");
}

TEST(EventJournalTest, StatsJsonCountsPerKind) {
  EventJournal journal;
  journal.Append(MakeEvent(QosEventKind::kDiskFailed));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  const std::string stats = journal.StatsJson("  ", "");
  EXPECT_NE(stats.find("\"journal_events\": 3"), std::string::npos);
  EXPECT_NE(stats.find("\"disk_failed\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"hiccups\": 2"), std::string::npos);
  // Kinds that never occurred are omitted.
  EXPECT_EQ(stats.find("rebuild_done"), std::string::npos);
}

TEST(EventJournalTest, WriteJsonlRoundTrips) {
  EventJournal journal;
  journal.Append(MakeEvent(QosEventKind::kDiskFailed));
  const std::string path =
      ::testing::TempDir() + "/event_journal_test.jsonl";
  ASSERT_TRUE(journal.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, journal.ToJsonl());
  std::remove(path.c_str());
}

TEST(EventJournalTest, RingCapEvictsOldestAndCountsDrops) {
  EventJournal journal(/*max_events=*/3);
  for (int i = 0; i < 5; ++i) {
    QosEvent e = MakeEvent(QosEventKind::kHiccups);
    e.cycle = i;
    journal.Append(e);
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.dropped(), 2);
  EXPECT_EQ(journal.total_appended(), 5);
  // The ring retains the newest 3 events, oldest-first.
  const auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cycle, 2);
  EXPECT_EQ(events[2].cycle, 4);
}

TEST(EventJournalTest, DroppedFooterAppearsOnlyWhenTruncated) {
  EventJournal journal(/*max_events=*/2);
  journal.Append(MakeEvent(QosEventKind::kDiskFailed));
  EXPECT_EQ(journal.ToJsonl().find("journal_dropped"), std::string::npos);
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  const std::string jsonl = journal.ToJsonl();
  // Footer is the final line, uses the "sim" pseudo-scheme, and carries
  // the eviction count as its value.
  EXPECT_NE(jsonl.find("\"kind\":\"journal_dropped\",\"scheme\":\"sim\""),
            std::string::npos);
  // Footer is the final line and carries the eviction count.
  const size_t last_line = jsonl.rfind('\n', jsonl.size() - 2) + 1;
  EXPECT_EQ(jsonl.compare(last_line, 25, "{\"kind\":\"journal_dropped\""),
            0);
  EXPECT_NE(jsonl.find("\"value\":1}\n", last_line), std::string::npos);
  // StatsJson surfaces the same count.
  EXPECT_NE(journal.StatsJson("  ", "").find("\"journal_dropped\": 1"),
            std::string::npos);
}

TEST(EventJournalTest, ClearResetsDroppedCount) {
  EventJournal journal(/*max_events=*/1);
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  journal.Append(MakeEvent(QosEventKind::kHiccups));
  EXPECT_EQ(journal.dropped(), 1);
  journal.Clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped(), 0);
  EXPECT_EQ(journal.ToJsonl(), "");
}

TEST(EventJournalTest, ZeroCapMeansUnbounded) {
  EventJournal journal(/*max_events=*/0);
  for (int i = 0; i < 1000; ++i) {
    journal.Append(MakeEvent(QosEventKind::kHiccups));
  }
  EXPECT_EQ(journal.size(), 1000u);
  EXPECT_EQ(journal.dropped(), 0);
}

TEST(EventJournalTest, TailLinesReturnsNewestOldestFirst) {
  EventJournal journal(/*max_events=*/4);
  for (int i = 0; i < 6; ++i) {
    QosEvent e = MakeEvent(QosEventKind::kHiccups);
    e.cycle = i;
    journal.Append(e);
  }
  int64_t total = 0, dropped = 0;
  const auto tail = journal.TailLines(2, &total, &dropped);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_NE(tail[0].find("\"cycle\":4"), std::string::npos);
  EXPECT_NE(tail[1].find("\"cycle\":5"), std::string::npos);
  EXPECT_EQ(total, 4);
  EXPECT_EQ(dropped, 2);
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(journal.TailLines(100).size(), 4u);
}

TEST(EventJournalTest, GlobalIsOffByDefault) {
  // FTMS_QOS is unset in the test environment: the zero-cost-off
  // contract hands out no journal, and schedulers stay detached.
  EXPECT_EQ(EventJournal::GlobalIfEnabled(), nullptr);
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  EXPECT_EQ(rig.sched->journal(), nullptr);
  EXPECT_EQ(rig.sched->qos_ledger(), nullptr);
}

TEST(EventJournalTest, SetGlobalEnabledAttachesSchedulers) {
  EventJournal::SetGlobalEnabled(true);
  EventJournal::Global().Clear();
  {
    SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
    EXPECT_EQ(rig.sched->journal(), &EventJournal::Global());
    // With no injected ledger the scheduler owns a private one.
    ASSERT_NE(rig.sched->qos_ledger(), nullptr);
    EXPECT_FALSE(rig.sched->qos_ledger()->slos().empty());
    rig.sched->AddStream(TestObject(0, 8)).value();
    rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);
    rig.sched->RunCycles(4);
    EXPECT_EQ(EventJournal::Global().CountOf(QosEventKind::kDiskFailed), 1);
  }
  EventJournal::Global().Clear();
  EventJournal::SetGlobalEnabled(false);
  EXPECT_EQ(EventJournal::GlobalIfEnabled(), nullptr);
}

// One NC failure drill captured through a private journal: the semantic
// events appear in cause-to-effect order with the right payloads.
TEST(EventJournalTest, SchedulerEmitsFailureLifecycle) {
  EventJournal journal;
  RigOptions options;
  options.journal = &journal;
  SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  rig.sched->AddStream(TestObject(0, 40)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  rig.sched->RunCycles(3);
  rig.sched->OnDiskRepaired(2);
  rig.sched->RunCycles(2);

  const auto events = journal.Snapshot();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0].kind, QosEventKind::kDiskFailed);
  EXPECT_EQ(events[0].scheme, "NC");
  EXPECT_EQ(events[0].cycle, 2);
  EXPECT_EQ(events[0].disk, 2);
  EXPECT_EQ(events[0].cluster, 0);
  EXPECT_EQ(events[0].value, 1);  // mid-sweep
  EXPECT_EQ(events[1].kind, QosEventKind::kDegradedTransitionStart);
  EXPECT_EQ(events[1].cluster, 0);
  EXPECT_EQ(events[1].value, 5);  // C-cycle window bound
  // The repair at cycle 5 cuts the C-cycle transition short.
  EXPECT_EQ(journal.CountOf(QosEventKind::kDiskRepaired), 1);
  EXPECT_EQ(journal.CountOf(QosEventKind::kDegradedTransitionEnd), 1);
  for (const QosEvent& e : events) {
    if (e.kind == QosEventKind::kDegradedTransitionEnd) {
      EXPECT_EQ(e.value, 1);  // ended early by the repair
    }
  }
}

TEST(EventJournalTest, HiccupDeltasAreJournaledPerCycle) {
  EventJournal journal;
  RigOptions options;
  options.journal = &journal;
  options.slots_per_disk = 1;
  options.nc_transition = NcTransition::kImmediateShift;
  SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  // The Figure 6 drill: three streams staggered on cluster 0, whose
  // shifted group reads displace each other once disk 2 fails.
  for (int i = 0; i < 3; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 8)).value();
    rig.sched->RunCycle();
  }
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  rig.sched->RunCycles(20);
  int64_t journaled = 0;
  for (const QosEvent& e : journal.Snapshot()) {
    if (e.kind == QosEventKind::kHiccups) journaled += e.value;
  }
  EXPECT_EQ(journaled, rig.sched->metrics().hiccups);
  EXPECT_GT(journaled, 0);
}

TEST(EventJournalTest, AdmissionRejectionIsJournaled) {
  EventJournal journal;
  RigOptions options;
  options.journal = &journal;
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10, options);
  // SR requires the configured uniform rate; a 2x object is unservable.
  EXPECT_FALSE(rig.sched->AddStream(TestObject(0, 8, 0.375)).ok());
  EXPECT_EQ(journal.CountOf(QosEventKind::kAdmissionRejected), 1);
}

std::string JournalAtThreads(int threads) {
  EventJournal journal;
  RigOptions options;
  options.journal = &journal;
  options.threads = threads;
  options.nc_transition = NcTransition::kImmediateShift;
  options.slots_per_disk = 1;
  SchedRig rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  for (int i = 0; i < 4; ++i) {
    rig.sched->AddStream(TestObject(2 * i, 12)).value();
    rig.sched->RunCycle();
  }
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  rig.sched->RunCycles(20);
  return journal.ToJsonl();
}

TEST(EventJournalTest, JournalBytesAreThreadCountInvariant) {
  // Events are folded at serial points only, so the journal must come out
  // byte-identical whether cycles run serially or on 8 workers.
  const std::string serial = JournalAtThreads(1);
  const std::string parallel = JournalAtThreads(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace ftms
