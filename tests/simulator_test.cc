#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftms {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(2.0, [] {});
  sim.Run();
  bool fired = false;
  sim.Schedule(-1.0, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 2.0);
}

TEST(SimulatorTest, PeriodicStopsOnFalse) {
  Simulator sim;
  int ticks = 0;
  SchedulePeriodic(sim, 0.0, 1.0, [&] { return ++ticks < 5; });
  sim.Run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.Now(), 4.0);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.Schedule(1.0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace ftms
