#include <gtest/gtest.h>

#include "sched/streaming_raid_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// Integrity mode: the Streaming RAID scheduler carries real bytes
// through read -> (XOR reconstruct) -> deliver and checks every
// delivered track against ground truth. This validates the scheduler's
// DYNAMIC reconstruction decisions (which group, which parity, which
// survivors) at the byte level, complementing the static datapath tests.

SchedRig VerifyingRig() {
  RigOptions options;
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10, options);
  // MakeRig has no verify flag; rebuild the scheduler with it on.
  SchedulerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.verify_data = true;
  rig.sched = std::move(
      CreateScheduler(config, rig.disks.get(), rig.layout.get()).value());
  return rig;
}

TEST(IntegrityModeTest, HealthyRunVerifiesEveryTrack) {
  SchedRig rig = VerifyingRig();
  rig.sched->AddStream(TestObject(0, 64)).value();
  rig.sched->AddStream(TestObject(2, 64)).value();
  rig.sched->RunCycles(40);
  EXPECT_EQ(rig.sched->metrics().verified_tracks, 128);
  EXPECT_EQ(rig.sched->metrics().verify_failures, 0);
}

TEST(IntegrityModeTest, ReconstructedTracksAreByteExact) {
  SchedRig rig = VerifyingRig();
  rig.sched->AddStream(TestObject(0, 128)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  rig.sched->RunCycles(60);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
  EXPECT_EQ(rig.sched->metrics().verified_tracks, 128);
  EXPECT_EQ(rig.sched->metrics().verify_failures, 0);
}

TEST(IntegrityModeTest, MultiFailureEpisodesStayExact) {
  SchedRig rig = VerifyingRig();
  rig.sched->AddStream(TestObject(0, 256)).value();
  rig.sched->AddStream(TestObject(2, 256)).value();
  rig.sched->RunCycles(5);
  rig.sched->OnDiskFailed(1, false);   // cluster 0
  rig.sched->OnDiskFailed(7, false);   // cluster 1
  rig.sched->RunCycles(30);
  rig.sched->OnDiskRepaired(1);
  rig.sched->OnDiskRepaired(7);
  rig.sched->RunCycles(120);
  EXPECT_EQ(rig.sched->metrics().verify_failures, 0);
  EXPECT_EQ(rig.sched->metrics().verified_tracks, 512);
  EXPECT_GT(rig.sched->metrics().reconstructed, 0);
}

TEST(IntegrityModeTest, OffByDefault) {
  SchedRig rig = MakeRig(Scheme::kStreamingRaid, 5, 10);
  rig.sched->AddStream(TestObject(0, 16)).value();
  rig.sched->RunCycles(8);
  EXPECT_EQ(rig.sched->metrics().verified_tracks, 0);
}

}  // namespace
}  // namespace ftms
