#include "layout/layout.h"

#include <gtest/gtest.h>

#include <tuple>

#include "layout/invariants.h"

namespace ftms {
namespace {

TEST(ClusteredLayoutTest, Figure3Placement) {
  // Figure 3: D = 10, C = 5, two clusters; object X (id 0) has home
  // cluster 0: X0..X3 on disks 0..3, parity X0p on disk 4; the next group
  // X4..X7 on disks 5..8, X4p on disk 9.
  auto layout = ClusteredLayout::Create(10, 5).value();
  EXPECT_EQ(layout->num_clusters(), 2);
  EXPECT_EQ(layout->DataBlocksPerGroup(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(layout->DataLocation(0, t).disk, t);
  }
  EXPECT_EQ(layout->ParityLocation(0, 0).disk, 4);
  for (int t = 4; t < 8; ++t) {
    EXPECT_EQ(layout->DataLocation(0, t).disk, 5 + (t - 4));
  }
  EXPECT_EQ(layout->ParityLocation(0, 1).disk, 9);
  // Group 2 wraps back to cluster 0 (round-robin).
  EXPECT_EQ(layout->DataLocation(0, 8).disk, 0);
}

TEST(ClusteredLayoutTest, HomeClusterSpreadsObjects) {
  auto layout = ClusteredLayout::Create(20, 5).value();
  EXPECT_EQ(layout->HomeCluster(0), 0);
  EXPECT_EQ(layout->HomeCluster(1), 1);
  EXPECT_EQ(layout->HomeCluster(4), 0);
  EXPECT_EQ(layout->DataLocation(1, 0).cluster, 1);
}

TEST(ClusteredLayoutTest, RejectsBadGeometry) {
  EXPECT_FALSE(ClusteredLayout::Create(11, 5).ok());
  EXPECT_FALSE(ClusteredLayout::Create(10, 1).ok());
  EXPECT_FALSE(ClusteredLayout::Create(-5, 5).ok());
}

TEST(ImprovedBandwidthLayoutTest, Figure8Placement) {
  // Figure 8: 8 disks, clusters of 4 (C = 5); object X (id 0): X0..X3 on
  // disks 0..3 of cluster 0, parity X0p on a disk of cluster 1.
  auto layout = ImprovedBandwidthLayout::Create(8, 5).value();
  EXPECT_EQ(layout->num_clusters(), 2);
  EXPECT_EQ(layout->disks_per_cluster(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(layout->DataLocation(0, t).disk, t);
    EXPECT_EQ(layout->DataLocation(0, t).cluster, 0);
  }
  const BlockLocation parity = layout->ParityLocation(0, 0);
  EXPECT_EQ(parity.cluster, 1);
  EXPECT_GE(parity.disk, 4);
  EXPECT_LE(parity.disk, 7);
  EXPECT_TRUE(parity.is_parity);
}

TEST(ImprovedBandwidthLayoutTest, ParityRotatesOverNeighborDisks) {
  auto layout = ImprovedBandwidthLayout::Create(12, 5).value();
  // Successive groups of one object land on successive clusters, and the
  // parity disk index within the neighbor cluster rotates.
  bool saw_different_index = false;
  int first_index = layout->ParityLocation(0, 0).disk % 4;
  for (int64_t g = 1; g < 8; ++g) {
    if (layout->ParityLocation(0, g).disk % 4 != first_index) {
      saw_different_index = true;
    }
  }
  EXPECT_TRUE(saw_different_index);
}

TEST(ImprovedBandwidthLayoutTest, RejectsSingleCluster) {
  EXPECT_FALSE(ImprovedBandwidthLayout::Create(4, 5).ok());
  EXPECT_FALSE(ImprovedBandwidthLayout::Create(10, 5).ok());  // 10 % 4 != 0
}

TEST(LayoutFactoryTest, DispatchesOnScheme) {
  EXPECT_EQ(CreateLayout(Scheme::kStreamingRaid, 20, 5)
                .value()
                ->scheme_family(),
            Scheme::kStreamingRaid);
  EXPECT_EQ(CreateLayout(Scheme::kNonClustered, 20, 5)
                .value()
                ->scheme_family(),
            Scheme::kStreamingRaid);  // shared clustered layout
  EXPECT_EQ(CreateLayout(Scheme::kImprovedBandwidth, 20, 5)
                .value()
                ->scheme_family(),
            Scheme::kImprovedBandwidth);
}


TEST(NonStripedLayoutTest, GroupsStayOnHomeCluster) {
  // The striping-ablation layout: all groups of an object pinned to its
  // home cluster (used by bench_striping to demonstrate why the paper
  // stripes round-robin).
  auto layout = NonStripedLayout::Create(20, 5).value();
  for (int obj : {0, 1, 3}) {
    const int home = layout->HomeCluster(obj);
    for (int64_t g = 0; g < 12; ++g) {
      EXPECT_EQ(layout->GroupCluster(obj, g), home);
      for (const BlockLocation& loc : layout->GroupDataLocations(obj, g)) {
        EXPECT_EQ(loc.cluster, home);
      }
      EXPECT_EQ(layout->ParityLocation(obj, g).cluster, home);
    }
  }
  // Structural invariants still hold (no duplicate disks per group).
  EXPECT_TRUE(CheckNoDuplicateDisksInGroup(*layout, 5, 20).ok());
  EXPECT_TRUE(CheckGroupWithinCluster(*layout, 5, 20).ok());
}

// Property sweep: structural invariants hold for every scheme and a range
// of geometries (Observation 1 et al., see invariants.h).
class LayoutInvariants
    : public ::testing::TestWithParam<std::tuple<Scheme, int, int>> {};

TEST_P(LayoutInvariants, AllStructuralChecksPass) {
  const auto [scheme, c, clusters] = GetParam();
  const int disks = (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) *
                    clusters;
  auto layout = CreateLayout(scheme, disks, c).value();

  constexpr int kObjects = 7;
  constexpr int64_t kGroups = 40;
  EXPECT_TRUE(
      CheckNoDuplicateDisksInGroup(*layout, kObjects, kGroups).ok());
  EXPECT_TRUE(CheckRoundRobinGroups(*layout, kObjects, kGroups).ok());
  if (scheme == Scheme::kImprovedBandwidth) {
    EXPECT_TRUE(CheckParityOnNextCluster(*layout, kObjects, kGroups).ok());
  } else {
    EXPECT_TRUE(CheckGroupWithinCluster(*layout, kObjects, kGroups).ok());
  }
  // Round-robin striping balances data over all data-role disks; over a
  // multiple of num_clusters groups the balance is exact.
  const int64_t balanced_groups = 10 * layout->num_clusters();
  EXPECT_TRUE(
      CheckDataLoadBalance(*layout, /*object_id=*/3, balanced_groups, 0)
          .ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutInvariants,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kNonClustered,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Values(2, 3, 5, 7, 10),
                       ::testing::Values(2, 4, 9)));

// Dual-parity geometries (C >= 3): the shared structural checks plus the
// P/Q placement invariant.
class DualParityLayoutInvariants
    : public ::testing::TestWithParam<std::tuple<Scheme, int, int>> {};

TEST_P(DualParityLayoutInvariants, StructureAndParityPlacement) {
  const auto [scheme, c, clusters] = GetParam();
  auto layout = CreateLayout(scheme, c * clusters, c).value();
  ASSERT_EQ(layout->parity_blocks(), 2);
  constexpr int kObjects = 7;
  constexpr int64_t kGroups = 40;
  EXPECT_TRUE(
      CheckNoDuplicateDisksInGroup(*layout, kObjects, kGroups).ok());
  EXPECT_TRUE(CheckRoundRobinGroups(*layout, kObjects, kGroups).ok());
  EXPECT_TRUE(CheckGroupWithinCluster(*layout, kObjects, kGroups).ok());
  EXPECT_TRUE(CheckDualParityDisks(*layout, kObjects, kGroups).ok());
  const int64_t balanced_groups = 10 * layout->num_clusters();
  EXPECT_TRUE(
      CheckDataLoadBalance(*layout, /*object_id=*/3, balanced_groups, 0)
          .ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DualParityLayoutInvariants,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid2,
                                         Scheme::kNonClustered2),
                       ::testing::Values(3, 5, 7, 10),
                       ::testing::Values(2, 4, 9)));

}  // namespace
}  // namespace ftms
