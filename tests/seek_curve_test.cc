#include "disk/seek_curve.h"

#include <gtest/gtest.h>

#include "disk/disk_model.h"

namespace ftms {
namespace {

TEST(SeekCurveTest, ZeroDistanceIsFree) {
  SeekCurve curve;
  EXPECT_DOUBLE_EQ(curve.SeekTimeS(0), 0.0);
  EXPECT_DOUBLE_EQ(curve.SeekTimeS(-3), 0.0);
}

TEST(SeekCurveTest, MonotoneNonDecreasing) {
  SeekCurve curve;
  double prev = 0;
  for (int d = 1; d < curve.cylinders; d += 7) {
    const double t = curve.SeekTimeS(d);
    EXPECT_GE(t, prev) << "d=" << d;
    prev = t;
  }
}

TEST(SeekCurveTest, FullStrokeNearTable1Seek) {
  // Defaults are calibrated so the full stroke lands near Table 1's
  // T_seek = 25 ms.
  SeekCurve curve;
  EXPECT_NEAR(curve.FullStrokeS(), 0.025, 0.002);
}

TEST(SeekCurveTest, ShortSeeksAreSqrtRegime) {
  SeekCurve curve;
  // Quadrupling a short distance should roughly double the sqrt term.
  const double t100 = curve.SeekTimeS(100) - curve.short_a_s;
  const double t400_minus_a =
      curve.short_b_s * 20.0;  // sqrt(400) = 20 (at the boundary)
  EXPECT_NEAR(t400_minus_a / t100, 2.0, 0.05);
}

TEST(SeekCurveTest, ConcavityMakesManyShortSeeksExpensive) {
  // The heart of the ablation: r short hops cost more than one long one.
  SeekCurve curve;
  EXPECT_GT(curve.SweepSeekS(12), curve.FullStrokeS());
  EXPECT_GT(curve.SweepSeekS(12), curve.SweepSeekS(4));
}

TEST(SeekCurveTest, BudgetsOrderedScanAboveFifo) {
  // SCAN's short hops still beat FIFO's average random seeks.
  SeekCurve curve;
  const double cycle_s = 0.2667;  // NC cycle from Table 1
  const int scan = TracksPerCycleUnderCurve(curve, 0.020, cycle_s);
  const int fifo = TracksPerCycleFifo(curve, 0.020, cycle_s);
  EXPECT_GT(scan, fifo);
  EXPECT_GT(fifo, 0);
}

TEST(SeekCurveTest, PaperModelIsOptimisticAtHighLoad) {
  // The paper charges one full stroke per cycle regardless of the number
  // of requests; under the concave curve the true sweep cost grows with
  // the request count, so the paper's budget is an upper bound.
  SeekCurve curve;
  DiskParameters paper;
  paper.seek_time_s = curve.FullStrokeS();
  const double cycle_s = 4 * 0.05 / 0.1875;  // SR cycle, C = 5
  const int paper_budget = paper.TracksPerCycle(cycle_s);
  const int curve_budget =
      TracksPerCycleUnderCurve(curve, paper.track_time_s, cycle_s);
  EXPECT_GE(paper_budget, curve_budget);
  // But not wildly so: within ~25% for Table 1 parameters.
  EXPECT_GT(curve_budget,
            static_cast<int>(0.75 * static_cast<double>(paper_budget)));
}

TEST(SeekCurveTest, Validation) {
  SeekCurve curve;
  EXPECT_TRUE(curve.Validate().ok());
  curve.threshold_cyl = 0;
  EXPECT_FALSE(curve.Validate().ok());
  curve = SeekCurve();
  curve.cylinders = curve.threshold_cyl;
  EXPECT_FALSE(curve.Validate().ok());
  curve = SeekCurve();
  curve.short_b_s = -1;
  EXPECT_FALSE(curve.Validate().ok());
}

}  // namespace
}  // namespace ftms
