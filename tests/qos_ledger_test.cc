#include "qos/qos_ledger.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"
#include "util/metrics.h"

namespace ftms {
namespace {

// A rig with a private journal + ledger attached, shared setup for the
// attribution scenarios.
struct QosRig {
  EventJournal journal;
  QosLedger ledger;
  SchedRig rig;
};

std::unique_ptr<QosRig> MakeQosRig(Scheme scheme, int num_disks,
                                   RigOptions options = RigOptions()) {
  auto q = std::make_unique<QosRig>();
  q->ledger.set_journal(&q->journal);
  options.journal = &q->journal;
  options.ledger = &q->ledger;
  q->rig = MakeRig(scheme, 5, num_disks, options);
  return q;
}

int64_t LedgerHiccupSum(const QosRig& q) {
  int64_t sum = 0;
  for (const StreamQosRecord& r :
       q.ledger.Capture(q.rig.sched->streams())) {
    sum += r.hiccups;
  }
  return sum;
}

TEST(QosLedgerTest, CapturesStartupLatencyAndContinuity) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  q->rig.sched->RunCycles(3);
  const StreamId id = q->rig.sched->AddStream(TestObject(0, 8)).value();
  q->rig.sched->RunCycles(6);
  const auto records = q->ledger.Capture(q->rig.sched->streams());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, id);
  EXPECT_EQ(records[0].admitted_cycle, 3);
  // SR reads the first group during the admission cycle and delivers it
  // in the next: startup latency is one cycle.
  EXPECT_EQ(records[0].first_delivered_cycle, 4);
  EXPECT_EQ(records[0].startup_cycles, 1);
  EXPECT_EQ(records[0].hiccups, 0);
  EXPECT_EQ(records[0].continuity, 1.0);
}

// Per-stream hiccup attribution under a mid-cycle failure, for each of
// the four schemes: the ledger's per-stream counts must sum to the
// scheduler's aggregate, and land on the streams the paper predicts.
TEST(QosLedgerTest, SrMidCycleFailureAttributesNothing) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(20);
  // SR holds the parity block in memory with the group: even a mid-sweep
  // failure is masked and no stream is charged a hiccup.
  EXPECT_EQ(q->rig.sched->metrics().hiccups, 0);
  EXPECT_EQ(LedgerHiccupSum(*q), 0);
  EXPECT_EQ(q->rig.sched->TotalHiccups(), 0);
}

TEST(QosLedgerTest, SgMidCycleFailureAttributesNothing) {
  auto q = MakeQosRig(Scheme::kStaggeredGroup, 10);
  q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(1, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(30);
  EXPECT_EQ(q->rig.sched->metrics().hiccups, 0);
  EXPECT_EQ(LedgerHiccupSum(*q), 0);
}

TEST(QosLedgerTest, IbMidCycleFailureChargesOneHiccupToAffectedStream) {
  auto q = MakeQosRig(Scheme::kImprovedBandwidth, 8);
  const StreamId hit = q->rig.sched->AddStream(TestObject(0, 64)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(0, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(20);
  const auto records = q->ledger.Capture(q->rig.sched->streams());
  ASSERT_EQ(records.size(), 1u);
  // Section 4: exactly one isolated hiccup on the stream whose read was
  // in flight, then parity substitution masks the rest.
  EXPECT_EQ(records[0].id, hit);
  EXPECT_EQ(records[0].hiccups, 1);
  EXPECT_EQ(LedgerHiccupSum(*q), q->rig.sched->TotalHiccups());
  EXPECT_EQ(LedgerHiccupSum(*q), q->rig.sched->metrics().hiccups);
}

// The canonical NC transition scenario of Figures 5-7 (see
// sched_nc_test.cc), re-run through the ledger: the per-stream
// attribution must reproduce the paper's which-streams-are-hit table.
std::unique_ptr<QosRig> RunNcTransition(NcTransition transition) {
  RigOptions options;
  options.nc_transition = transition;
  options.slots_per_disk = 1;
  auto q = MakeQosRig(Scheme::kNonClustered, 10, options);
  int next_object = 0;
  const auto add = [&] {
    q->rig.sched->AddStream(TestObject(2 * next_object++, 8)).value();
  };
  add();                        // U
  q->rig.sched->RunCycle();
  add();                        // W
  q->rig.sched->RunCycle();
  add();                        // Y
  q->rig.sched->RunCycle();
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  for (int i = 0; i < 4; ++i) {  // A, C, E, G
    add();
    q->rig.sched->RunCycle();
  }
  q->rig.sched->RunCycles(20);
  return q;
}

TEST(QosLedgerTest, NcImmediateShiftAttributionMatchesFigure6) {
  auto q = RunNcTransition(NcTransition::kImmediateShift);
  const auto records = q->ledger.Capture(q->rig.sched->streams());
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].hiccups, 1);  // U loses U3
  EXPECT_EQ(records[1].hiccups, 2);  // W loses W2, W3
  EXPECT_EQ(records[2].hiccups, 3);  // Y loses Y1, Y2, Y3
  for (size_t i = 3; i < records.size(); ++i) {
    EXPECT_EQ(records[i].hiccups, 0);  // A and later reconstruct
  }
  EXPECT_EQ(LedgerHiccupSum(*q), 6);
  EXPECT_EQ(LedgerHiccupSum(*q), q->rig.sched->TotalHiccups());
  EXPECT_EQ(LedgerHiccupSum(*q), q->rig.sched->metrics().hiccups);
}

TEST(QosLedgerTest, NcDeferredReadAttributionMatchesFigure7) {
  auto q = RunNcTransition(NcTransition::kDeferredRead);
  const auto records = q->ledger.Capture(q->rig.sched->streams());
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].hiccups, 0);  // U keeps U3
  EXPECT_EQ(records[1].hiccups, 1);  // W loses W2
  EXPECT_EQ(records[2].hiccups, 2);  // Y loses Y2, Y3
  EXPECT_EQ(LedgerHiccupSum(*q), 3);
  EXPECT_EQ(LedgerHiccupSum(*q), q->rig.sched->TotalHiccups());
}

TEST(QosLedgerTest, DegradedExposureCountsOnlyFailedCycles) {
  auto q = MakeQosRig(Scheme::kStreamingRaid, 10);
  const StreamId id = q->rig.sched->AddStream(TestObject(0, 400)).value();
  q->rig.sched->RunCycles(2);
  q->rig.sched->OnDiskFailed(1, /*mid_cycle=*/false);
  q->rig.sched->RunCycles(5);
  q->rig.sched->OnDiskRepaired(1);
  q->rig.sched->RunCycles(4);
  EXPECT_EQ(q->ledger.degraded_cycles(id), 5);
  EXPECT_EQ(q->ledger.degraded_stream_cycles(), 5);
  EXPECT_EQ(q->ledger.cycles_observed(), 11);
  EXPECT_EQ(q->ledger.failures_observed(), 1);
  const auto records = q->ledger.Capture(q->rig.sched->streams());
  EXPECT_EQ(records[0].degraded_cycles, 5);
}

TEST(QosLedgerTest, EvaluateSlosScalesPerFailureBounds) {
  std::vector<StreamQosRecord> records(3);
  records[0].hiccups = 2;
  records[1].hiccups = 5;
  records[2].hiccups = 0;
  for (auto& r : records) {
    r.delivered = 95;
    r.continuity = static_cast<double>(r.delivered) /
                   static_cast<double>(r.delivered + r.hiccups);
    r.startup_cycles = 1;
  }
  std::vector<SloSpec> slos;
  slos.push_back({"per_stream", SloKind::kMaxHiccupsPerStream, 2.0,
                  /*per_failure=*/true});
  slos.push_back({"total", SloKind::kMaxTotalHiccups, 10.0,
                  /*per_failure=*/false});
  slos.push_back({"continuity", SloKind::kMinContinuity, 0.99,
                  /*per_failure=*/false});

  // Two failures: the per-failure bound doubles to 4, still breached by
  // the worst stream's 5.
  auto statuses = EvaluateSlos(records, slos, /*failures=*/2);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0].effective_bound, 4.0);
  EXPECT_EQ(statuses[0].observed, 5.0);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[0].budget_burn, 5.0 / 4.0);
  EXPECT_EQ(statuses[1].observed, 7.0);
  EXPECT_FALSE(statuses[1].breached);
  EXPECT_DOUBLE_EQ(statuses[1].budget_burn, 0.7);
  // Worst continuity 95/100 = 0.95 < 0.99: burn = 0.05 / 0.01 = 5.
  EXPECT_TRUE(statuses[2].breached);
  EXPECT_NEAR(statuses[2].budget_burn, 5.0, 1e-9);

  // Three failures lift the per-stream bound to 6: no longer breached.
  statuses = EvaluateSlos(records, slos, /*failures=*/3);
  EXPECT_FALSE(statuses[0].breached);

  // A zero-bound SLO burns 1 + observed on any occurrence.
  std::vector<SloSpec> zero = {{"none", SloKind::kMaxHiccupsPerStream, 0.0,
                                /*per_failure=*/false}};
  statuses = EvaluateSlos(records, zero, 0);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[0].budget_burn, 6.0);
}

TEST(QosLedgerTest, DefaultSlosEncodeThePaperBounds) {
  const auto bound_of = [](Scheme scheme) {
    return DefaultSlos(scheme, 5).at(0).bound;
  };
  EXPECT_EQ(bound_of(Scheme::kStreamingRaid), 0);
  EXPECT_EQ(bound_of(Scheme::kStaggeredGroup), 0);
  EXPECT_EQ(bound_of(Scheme::kImprovedBandwidth), 1);
  EXPECT_EQ(bound_of(Scheme::kNonClustered), 3);  // C - 2
  for (Scheme scheme : kAllSchemes) {
    const auto slos = DefaultSlos(scheme, 5);
    ASSERT_EQ(slos.size(), 2u) << SchemeName(scheme);
    EXPECT_TRUE(slos[0].per_failure);
    EXPECT_EQ(slos[1].kind, SloKind::kMaxStartupP99Cycles);
    EXPECT_EQ(slos[1].bound, 10);  // 2C
  }
}

TEST(QosLedgerTest, BreachIsEdgeTriggeredAndJournaled) {
  RigOptions options;
  options.nc_transition = NcTransition::kImmediateShift;
  options.slots_per_disk = 1;
  auto q = std::make_unique<QosRig>();
  q->ledger.set_journal(&q->journal);
  // A deliberately strict SLO: NC cannot hold zero hiccups through an
  // immediate-shift transition.
  q->ledger.SetSlos({{"zero_hiccups", SloKind::kMaxHiccupsPerStream, 0.0,
                      /*per_failure=*/false}});
  options.journal = &q->journal;
  options.ledger = &q->ledger;
  q->rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  for (int i = 0; i < 3; ++i) {  // the staggered Figure 6 drill
    q->rig.sched->AddStream(TestObject(2 * i, 8)).value();
    q->rig.sched->RunCycle();
  }
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  q->rig.sched->RunCycles(20);
  EXPECT_EQ(q->ledger.active_breaches(), 1);
  // The breach persisted over many cycles but is journaled exactly once.
  EXPECT_EQ(q->ledger.breach_events(), 1);
  EXPECT_EQ(q->journal.CountOf(QosEventKind::kSloBreach), 1);
  for (const QosEvent& e : q->journal.Snapshot()) {
    if (e.kind == QosEventKind::kSloBreach) {
      EXPECT_EQ(e.value, 0);  // index of the breached SloSpec
    }
  }
}

TEST(QosLedgerTest, BindMetricsExportsQosGauges) {
  MetricsRegistry registry;
  RigOptions options;
  options.nc_transition = NcTransition::kImmediateShift;
  options.slots_per_disk = 1;
  options.metrics = &registry;
  auto q = std::make_unique<QosRig>();
  options.journal = &q->journal;
  options.ledger = &q->ledger;
  q->rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  for (int i = 0; i < 3; ++i) {  // the staggered Figure 6 drill
    q->rig.sched->AddStream(TestObject(2 * i, 8)).value();
    q->rig.sched->RunCycle();
  }
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/false);
  q->rig.sched->RunCycles(20);
  // The scheduler bound the injected ledger to its registry with the
  // scheme label; the worst-stream gauge must mirror the stream table.
  Gauge* worst = registry.GetGauge(
      LabeledName("ftms_qos_worst_stream_hiccups", {{"scheme", "NC"}}), "");
  int64_t expected = 0;
  for (const auto& stream : q->rig.sched->streams()) {
    expected = std::max(expected, stream->hiccup_count());
  }
  EXPECT_GT(expected, 0);
  EXPECT_EQ(worst->value(), static_cast<double>(expected));
  Gauge* degraded = registry.GetGauge(
      LabeledName("ftms_qos_degraded_stream_cycles", {{"scheme", "NC"}}),
      "");
  EXPECT_GT(degraded->value(), 0);
}

std::string DumpAtThreads(int threads) {
  RigOptions options;
  options.nc_transition = NcTransition::kImmediateShift;
  options.slots_per_disk = 1;
  options.threads = threads;
  auto q = std::make_unique<QosRig>();
  options.journal = &q->journal;
  options.ledger = &q->ledger;
  q->rig = MakeRig(Scheme::kNonClustered, 5, 10, options);
  for (int i = 0; i < 4; ++i) {
    q->rig.sched->AddStream(TestObject(2 * i, 12)).value();
    q->rig.sched->RunCycle();
  }
  q->rig.sched->OnDiskFailed(2, /*mid_cycle=*/true);
  q->rig.sched->RunCycles(20);
  return q->ledger.DumpJson(q->rig.sched->streams());
}

TEST(QosLedgerTest, DumpJsonBytesAreThreadCountInvariant) {
  const std::string serial = DumpAtThreads(1);
  const std::string parallel = DumpAtThreads(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Sanity: the dump carries the per-stream table and SLO statuses.
  EXPECT_NE(serial.find("\"streams\": ["), std::string::npos);
  EXPECT_NE(serial.find("\"slos\": ["), std::string::npos);
}

}  // namespace
}  // namespace ftms
