#include "parity/xor_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"

namespace ftms {
namespace {

// The determinism contract of the kernel library: XOR is exact, so EVERY
// compiled kernel the CPU can run must produce byte-identical output for
// every size, alignment and source count — dispatch may only change
// speed. The reference below is computed independently (naive per-byte
// loop), so a bug shared by all kernels still fails.
std::vector<uint8_t> NaiveXor(const std::vector<uint8_t>& dst,
                              const std::vector<const uint8_t*>& srcs,
                              size_t bytes) {
  std::vector<uint8_t> out = dst;
  for (const uint8_t* src : srcs) {
    for (size_t i = 0; i < bytes; ++i) out[i] ^= src[i];
  }
  return out;
}

TEST(XorKernelTest, ScalarIsAlwaysCompiledAndRunnable) {
  ASSERT_FALSE(CompiledXorKernels().empty());
  EXPECT_STREQ(CompiledXorKernels().front().name, "scalar");
  EXPECT_TRUE(CompiledXorKernels().front().supported());
}

TEST(XorKernelTest, EveryRunnableKernelMatchesNaiveReference) {
  // Sizes chosen to hit every code path: empty, sub-word, word tails,
  // one-off-vector widths, the unrolled main loop, and a track-sized
  // block that is not a multiple of any vector width.
  const size_t kSizes[] = {0, 1, 7, 8, 15, 63, 64, 65, 127, 128, 129,
                           255, 256, 257, 1024, 4096 + 3, 50 * 1024 + 3};
  // Offsets into an oversized buffer: kernels promise no alignment
  // requirements, so deliberately misalign dst and every source.
  const size_t kOffsets[] = {0, 1, 3};
  Rng rng(0x5EEDu);
  for (size_t bytes : kSizes) {
    for (size_t offset : kOffsets) {
      for (int nsrc = 1; nsrc <= kMaxXorSources; ++nsrc) {
        std::vector<std::vector<uint8_t>> backing(
            static_cast<size_t>(nsrc));
        std::vector<const uint8_t*> srcs;
        for (auto& buf : backing) {
          buf.resize(bytes + offset);
          for (uint8_t& b : buf) {
            b = static_cast<uint8_t>(rng.NextUint64());
          }
          srcs.push_back(buf.data() + offset);
        }
        std::vector<uint8_t> seed(bytes);
        for (uint8_t& b : seed) {
          b = static_cast<uint8_t>(rng.NextUint64());
        }
        const std::vector<uint8_t> expected =
            NaiveXor(seed, srcs, bytes);
        for (const XorKernel& kernel : CompiledXorKernels()) {
          if (!kernel.supported()) continue;
          std::vector<uint8_t> dst(bytes + offset);
          std::memcpy(dst.data() + offset, seed.data(), bytes);
          kernel.xor_n(dst.data() + offset, srcs.data(), nsrc, bytes);
          ASSERT_EQ(0, std::memcmp(dst.data() + offset, expected.data(),
                                   bytes))
              << kernel.name << " diverges at bytes=" << bytes
              << " offset=" << offset << " nsrc=" << nsrc;
        }
      }
    }
  }
}

TEST(XorKernelTest, XorIntoNBatchesBeyondMaxSources) {
  // 21 sources forces three kernel batches (8 + 8 + 5).
  constexpr int kSources = 2 * kMaxXorSources + 5;
  constexpr size_t kBytes = 1000;
  Rng rng(7);
  std::vector<std::vector<uint8_t>> backing(kSources);
  std::vector<const uint8_t*> srcs;
  for (auto& buf : backing) {
    buf.resize(kBytes);
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng.NextUint64());
    srcs.push_back(buf.data());
  }
  std::vector<uint8_t> dst(kBytes, 0xA5);
  const std::vector<uint8_t> expected = NaiveXor(dst, srcs, kBytes);
  XorIntoN(dst.data(), srcs.data(), kSources, kBytes);
  EXPECT_EQ(dst, expected);
  // nsrc = 0 is a documented no-op.
  XorIntoN(dst.data(), srcs.data(), 0, kBytes);
  EXPECT_EQ(dst, expected);
}

TEST(XorKernelTest, SelectionReportCoversEveryCompiledKernel) {
  const auto report = XorKernelSelectionReport();
  ASSERT_EQ(report.size(), CompiledXorKernels().size());
  int selected = 0;
  for (const XorKernelMeasurement& m : report) {
    if (m.selected) {
      ++selected;
      EXPECT_TRUE(m.supported);
      EXPECT_STREQ(m.name, ActiveXorKernelName());
    }
    if (m.supported) EXPECT_GT(m.gb_per_s, 0.0);
  }
  EXPECT_EQ(selected, 1);
}

TEST(XorKernelTest, FindXorKernelKnowsScalarAndRejectsUnknown) {
  ASSERT_TRUE(FindXorKernel("scalar").ok());
  EXPECT_STREQ(FindXorKernel("scalar").value()->name, "scalar");
  const auto missing = FindXorKernel("mmx");
  ASSERT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  // The error names the valid choices.
  EXPECT_NE(missing.status().message().find("scalar"), std::string::npos);
}

TEST(XorKernelTest, ParseXorKernelSpecAutoAndEmptyMeanDispatch) {
  EXPECT_EQ(ParseXorKernelSpec("").value(), nullptr);
  EXPECT_EQ(ParseXorKernelSpec("auto").value(), nullptr);
  EXPECT_STREQ(ParseXorKernelSpec("scalar").value()->name, "scalar");
  EXPECT_EQ(ParseXorKernelSpec("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(XorKernelTest, PinOverridesActiveKernel) {
  const XorKernel* scalar = FindXorKernel("scalar").value();
  const char* before = ActiveXorKernelName();
  PinXorKernel(scalar);
  EXPECT_STREQ(ActiveXorKernelName(), "scalar");
  PinXorKernel(nullptr);
  EXPECT_STREQ(ActiveXorKernelName(), before);
}

}  // namespace
}  // namespace ftms
