#include "stream/admission.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(AdmissionTest, CapacityFromModel) {
  // Table 2: Streaming RAID at C = 5 supports 1041 streams.
  SystemParameters p;
  AdmissionController admission =
      AdmissionController::Create(p, Scheme::kStreamingRaid, 5).value();
  EXPECT_EQ(admission.capacity(), 1041);
}

TEST(AdmissionTest, AdmitsToCapacityThenRejects) {
  AdmissionController admission(3);
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_EQ(admission.Admit().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.active(), 3);
  EXPECT_EQ(admission.admitted_total(), 3);
  EXPECT_EQ(admission.rejected_total(), 1);

  admission.Release();
  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_EQ(admission.admitted_total(), 4);
}

TEST(AdmissionTest, InvalidModelParametersPropagate) {
  SystemParameters p;
  p.num_disks = 0;
  EXPECT_FALSE(
      AdmissionController::Create(p, Scheme::kStreamingRaid, 5).ok());
}

}  // namespace
}  // namespace ftms
