#include "server/rebuild.h"

#include <gtest/gtest.h>

namespace ftms {
namespace {

TEST(RebuildTest, ParityRebuildTimeScalesWithBandwidthFraction) {
  DiskParameters disk;  // 20000 tracks x 20 ms = 400 s of pure reading
  const RebuildEstimate full =
      RebuildFromParity(disk, 5, /*bandwidth_fraction=*/1.0).value();
  const RebuildEstimate tenth =
      RebuildFromParity(disk, 5, /*bandwidth_fraction=*/0.1).value();
  EXPECT_NEAR(full.hours, 400.0 / 3600.0, 1e-9);
  EXPECT_NEAR(tenth.hours, 10 * full.hours, 1e-9);
  EXPECT_DOUBLE_EQ(tenth.degraded_fraction, 0.1);
}

TEST(RebuildTest, ParityRebuildValidatesArguments) {
  DiskParameters disk;
  EXPECT_FALSE(RebuildFromParity(disk, 1, 0.5).ok());
  EXPECT_FALSE(RebuildFromParity(disk, 5, 0.0).ok());
  EXPECT_FALSE(RebuildFromParity(disk, 5, 1.5).ok());
}

TEST(RebuildTest, TertiaryRebuildIsFarSlowerThanParityRebuild) {
  // The quantitative version of the paper's Section 1 argument: losing
  // the parity path (catastrophic failure) makes recovery orders of
  // magnitude slower.
  DiskParameters disk;
  TertiaryStore tertiary{TertiaryParameters{}};
  const double parity_hours =
      RebuildFromParity(disk, 5, 1.0).value().hours;
  // A 1 GB disk whose contents touch 300 objects/tapes.
  const double tertiary_hours =
      RebuildFromTertiary(tertiary, 1000.0, 300).value().hours;
  EXPECT_GT(tertiary_hours, 10 * parity_hours);
}

TEST(RebuildTest, TertiaryRebuildRejectsNegativeSize) {
  TertiaryStore tertiary{TertiaryParameters{}};
  EXPECT_FALSE(RebuildFromTertiary(tertiary, -1.0, 10).ok());
}

}  // namespace
}  // namespace ftms
