#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace ftms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad C");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad C");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad C");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kOutOfRange, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeToString(code), "UNKNOWN");
    EXPECT_FALSE(StatusCodeToString(code).empty());
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status Helper(bool fail) {
  if (fail) {
    FTMS_RETURN_IF_ERROR(Status::Internal("inner"));
  }
  FTMS_RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ftms
