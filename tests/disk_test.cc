#include "disk/disk.h"

#include <gtest/gtest.h>

#include "disk/disk_array.h"
#include "disk/disk_model.h"

namespace ftms {
namespace {

TEST(DiskModelTest, Table1DefaultsAreValid) {
  DiskParameters p;
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_DOUBLE_EQ(p.seek_time_s, 0.025);
  EXPECT_DOUBLE_EQ(p.track_time_s, 0.020);
  EXPECT_DOUBLE_EQ(p.track_mb, 0.050);
}

TEST(DiskModelTest, ReadTimeIsLinear) {
  // T(r) = T_seek + r * T_trk (Section 2).
  DiskParameters p;
  EXPECT_DOUBLE_EQ(p.ReadTime(0), 0.025);
  EXPECT_DOUBLE_EQ(p.ReadTime(1), 0.045);
  EXPECT_DOUBLE_EQ(p.ReadTime(10), 0.225);
}

TEST(DiskModelTest, TracksPerCycleInvertsReadTime) {
  DiskParameters p;
  // NC cycle with Table 1 parameters: B/b_o = 0.05/0.1875 s = 0.2667 s.
  const double cycle = 0.05 / 0.1875;
  const int slots = p.TracksPerCycle(cycle);
  EXPECT_EQ(slots, 12);
  EXPECT_LE(p.ReadTime(slots), cycle);
  EXPECT_GT(p.ReadTime(slots + 1), cycle);
}

TEST(DiskModelTest, TracksPerCycleZeroWhenSeekDominates) {
  DiskParameters p;
  EXPECT_EQ(p.TracksPerCycle(0.01), 0);
}

TEST(DiskModelTest, BandwidthMatchesPaperFootnote) {
  // ~32 mbps disk = ~2.5 MB/s sustained (footnote 2).
  DiskParameters p;
  EXPECT_NEAR(p.BandwidthMbS(), 2.5, 1e-9);
}

TEST(DiskModelTest, ValidationRejectsNonsense) {
  DiskParameters p;
  p.track_time_s = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParameters();
  p.capacity_mb = 0.01;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParameters();
  p.mttr_hours = -1;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DiskTest, FailAndRepairLifecycle) {
  Disk d(3);
  EXPECT_TRUE(d.operational());
  EXPECT_TRUE(d.Read(2));
  EXPECT_EQ(d.tracks_read(), 2);

  d.Fail();
  EXPECT_FALSE(d.operational());
  EXPECT_FALSE(d.Read(1));
  EXPECT_EQ(d.failed_reads(), 1);
  EXPECT_EQ(d.times_failed(), 1);
  d.Fail();  // idempotent
  EXPECT_EQ(d.times_failed(), 1);

  d.Repair();
  EXPECT_TRUE(d.operational());
  EXPECT_TRUE(d.Read(1));
  EXPECT_EQ(d.tracks_read(), 3);
}

TEST(DiskArrayTest, CreateValidatesDivisibility) {
  DiskParameters p;
  EXPECT_TRUE(DiskArray::Create(100, 5, p).ok());
  EXPECT_FALSE(DiskArray::Create(101, 5, p).ok());
  EXPECT_FALSE(DiskArray::Create(0, 5, p).ok());
  EXPECT_FALSE(DiskArray::Create(10, 0, p).ok());
}

TEST(DiskArrayTest, ClusterGeometry) {
  DiskParameters p;
  DiskArray array = std::move(DiskArray::Create(20, 5, p).value());
  EXPECT_EQ(array.num_clusters(), 4);
  EXPECT_EQ(array.ClusterOf(0), 0);
  EXPECT_EQ(array.ClusterOf(7), 1);
  EXPECT_EQ(array.IndexInCluster(7), 2);
  EXPECT_EQ(array.DiskId(1, 2), 7);
  EXPECT_EQ(array.ParityDiskOf(0), 4);
  EXPECT_EQ(array.ParityDiskOf(3), 19);
}

TEST(DiskArrayTest, FailureAccounting) {
  DiskParameters p;
  DiskArray array = std::move(DiskArray::Create(20, 5, p).value());
  EXPECT_EQ(array.NumFailed(), 0);
  EXPECT_TRUE(array.FailDisk(3).ok());
  EXPECT_TRUE(array.FailDisk(11).ok());
  EXPECT_EQ(array.NumFailed(), 2);
  EXPECT_EQ(array.NumFailedInCluster(0), 1);
  EXPECT_EQ(array.NumFailedInCluster(2), 1);
  EXPECT_FALSE(array.HasCatastrophicClusterFailure());
  EXPECT_EQ(array.FailedDisks(), (std::vector<int>{3, 11}));

  // Second failure in cluster 0: catastrophic for clustered schemes.
  EXPECT_TRUE(array.FailDisk(4).ok());
  EXPECT_TRUE(array.HasCatastrophicClusterFailure());

  EXPECT_TRUE(array.RepairDisk(4).ok());
  EXPECT_FALSE(array.HasCatastrophicClusterFailure());
  EXPECT_FALSE(array.FailDisk(99).ok());
  EXPECT_FALSE(array.RepairDisk(-1).ok());
}

}  // namespace
}  // namespace ftms
