#include <gtest/gtest.h>

#include <tuple>

#include "model/buffers.h"
#include "sched/cycle_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

int DisksFor(Scheme scheme, int c, int clusters) {
  return (scheme == Scheme::kImprovedBandwidth ? c - 1 : c) * clusters;
}

// Properties every scheme must satisfy, swept over schemes and group
// sizes.
class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(SchedulerProperty, FaultFreeRunDeliversEverythingOnTime) {
  const auto [scheme, c] = GetParam();
  SchedRig rig = MakeRig(scheme, c, DisksFor(scheme, c, 3));
  constexpr int kStreams = 6;
  const int64_t tracks = 8LL * (c - 1);
  for (int i = 0; i < kStreams; ++i) {
    rig.sched->AddStream(TestObject(3 * i, tracks)).value();
  }
  rig.sched->RunCycles(static_cast<int>(tracks) * 3 + 20);
  int64_t delivered = 0;
  for (const auto& s : rig.sched->streams()) {
    EXPECT_EQ(s->state(), StreamState::kCompleted);
    EXPECT_EQ(s->hiccup_count(), 0);
    delivered += s->delivered_tracks();
  }
  EXPECT_EQ(delivered, kStreams * tracks);
  EXPECT_EQ(rig.sched->metrics().hiccups, 0);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
}

TEST_P(SchedulerProperty, DeliveryNeverStallsEvenUnderFailure) {
  // The real-time invariant: a stream delivers exactly one track per
  // cycle-slot from its start to its end, hiccup or not — playback never
  // pauses (Section 1).
  const auto [scheme, c] = GetParam();
  SchedRig rig = MakeRig(scheme, c, DisksFor(scheme, c, 3));
  const int64_t tracks = 8LL * (c - 1);
  const StreamId id = rig.sched->AddStream(TestObject(0, tracks)).value();
  rig.sched->RunCycles(2);
  rig.sched->OnDiskFailed(0, /*mid_cycle=*/false);
  rig.sched->RunCycles(static_cast<int>(tracks) * 3 + 20);
  const Stream* s = rig.sched->FindStream(id);
  EXPECT_EQ(s->state(), StreamState::kCompleted);
  EXPECT_EQ(s->delivered_tracks() + s->hiccup_count(), tracks);
}

TEST_P(SchedulerProperty, SlotBudgetNeverExceeded) {
  // Per-disk reads per cycle never exceed the derived slot budget: the
  // admission-level guarantee the capacity equations rest on. Verified
  // indirectly: with a modest load no read is ever dropped.
  const auto [scheme, c] = GetParam();
  SchedRig rig = MakeRig(scheme, c, DisksFor(scheme, c, 3));
  for (int i = 0; i < 9; ++i) {
    rig.sched->AddStream(TestObject(i, 40L * (c - 1))).value();
  }
  rig.sched->RunCycles(150);
  EXPECT_EQ(rig.sched->metrics().dropped_reads, 0);
}

TEST_P(SchedulerProperty, BufferPeakWithinAnalyticalBound) {
  // The pool's measured peak stays within a per-stream worst case
  // consistent with equations (12)-(15): 2C for SR, C+2 for an SG stream
  // on its overlap read cycle (old tail + parity + the C new tracks),
  // 2 for NC, 2(C-1) for IB.
  const auto [scheme, c] = GetParam();
  SchedRig rig = MakeRig(scheme, c, DisksFor(scheme, c, 3));
  constexpr int kStreams = 6;
  for (int i = 0; i < kStreams; ++i) {
    rig.sched->AddStream(TestObject(3 * i, 60L * (c - 1))).value();
  }
  rig.sched->RunCycles(80);
  double per_stream = 0;
  switch (scheme) {
    case Scheme::kStreamingRaid:
    case Scheme::kStreamingRaid2:
      per_stream = 2.0 * c;
      break;
    case Scheme::kStaggeredGroup:
      per_stream = c + 2.0;
      break;
    case Scheme::kNonClustered:
    case Scheme::kNonClustered2:
      per_stream = 2.0;
      break;
    case Scheme::kImprovedBandwidth:
      per_stream = 2.0 * (c - 1);
      break;
  }
  EXPECT_LE(static_cast<double>(rig.sched->buffer_pool().peak_in_use()),
            per_stream * kStreams);
  // And the analytical normal-mode counts are never exceeded by more
  // than the overlap-cycle slack.
  EXPECT_GE(per_stream + 0.01, BuffersPerStreamNormal(scheme, c));
}

TEST_P(SchedulerProperty, SingleFailureNeverLosesDataAtGroupGranularity) {
  // For SR/SG (and IB at cycle boundaries) a single failure is fully
  // masked; for NC a stream at a group boundary is also lossless. This
  // parameterization covers the masked cases.
  const auto [scheme, c] = GetParam();
  SchedRig rig = MakeRig(scheme, c, DisksFor(scheme, c, 3));
  const int64_t tracks = 10LL * (c - 1);
  const StreamId id = rig.sched->AddStream(TestObject(0, tracks)).value();
  if (scheme == Scheme::kNonClustered ||
      scheme == Scheme::kNonClustered2) {
    // Fail before the stream starts: it is at a group boundary.
    rig.sched->OnDiskFailed(0, false);
  } else {
    rig.sched->RunCycles(2);
    rig.sched->OnDiskFailed(0, false);
  }
  rig.sched->RunCycles(static_cast<int>(tracks) * 3 + 20);
  EXPECT_EQ(rig.sched->FindStream(id)->hiccup_count(), 0)
      << SchemeName(scheme) << " C=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndGroups, SchedulerProperty,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kStaggeredGroup,
                                         Scheme::kNonClustered,
                                         Scheme::kImprovedBandwidth,
                                         Scheme::kStreamingRaid2,
                                         Scheme::kNonClustered2),
                       ::testing::Values(3, 5, 7)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>>& info) {
      return std::string(SchemeAbbrev(std::get<0>(info.param))) + "_C" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftms
