#include "model/reliability_model.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace ftms {
namespace {

TEST(ReliabilityModelTest, IntroductionFirstFailureExample) {
  // Section 1: 1000 disks at 300,000 h -> some disk fails every ~300 h
  // (~12 days).
  const double hours = MeanTimeToFirstFailureHours(300000.0, 1000);
  EXPECT_DOUBLE_EQ(hours, 300.0);
  EXPECT_NEAR(hours / 24.0, 12.5, 0.1);
}

TEST(ReliabilityModelTest, StreamingRaid1000DiskExample) {
  // Section 2: 1000 disks, clusters of 9 data + 1 parity, MTTR = 1 h ->
  // ~1100 years to catastrophic failure.
  SystemParameters p;
  p.num_disks = 1000;
  const double hours =
      MttfCatastrophicHours(p, Scheme::kStreamingRaid, 10).value();
  EXPECT_NEAR(HoursToYears(hours), 1141.6, 1.0);
}

TEST(ReliabilityModelTest, ImprovedBandwidth1000DiskExample) {
  // Section 4: same farm under IB -> ~540 years (exposure 2C-1 = 19).
  SystemParameters p;
  p.num_disks = 1000;
  const double hours =
      MttfCatastrophicHours(p, Scheme::kImprovedBandwidth, 10).value();
  EXPECT_NEAR(HoursToYears(hours), 540.8, 1.0);
}

TEST(ReliabilityModelTest, Table2Mttf) {
  SystemParameters p;  // D = 100
  EXPECT_NEAR(
      HoursToYears(
          MttfCatastrophicHours(p, Scheme::kStreamingRaid, 5).value()),
      25684.9, 0.1);
  EXPECT_NEAR(
      HoursToYears(
          MttfCatastrophicHours(p, Scheme::kImprovedBandwidth, 5).value()),
      11415.5, 0.1);
}

TEST(ReliabilityModelTest, Table3Mttf) {
  SystemParameters p;
  EXPECT_NEAR(
      HoursToYears(
          MttfCatastrophicHours(p, Scheme::kStreamingRaid, 7).value()),
      17123.3, 0.1);
  EXPECT_NEAR(
      HoursToYears(
          MttfCatastrophicHours(p, Scheme::kImprovedBandwidth, 7).value()),
      7903.1, 0.1);
}

TEST(ReliabilityModelTest, MttdsEqualsMttfForSrSg) {
  SystemParameters p;
  for (Scheme scheme :
       {Scheme::kStreamingRaid, Scheme::kStaggeredGroup}) {
    EXPECT_DOUBLE_EQ(MttdsHours(p, scheme, 5).value(),
                     MttfCatastrophicHours(p, scheme, 5).value());
  }
}

TEST(ReliabilityModelTest, TablesMttdsForNcIb) {
  // Tables 2/3: 3,176,862.3 years with K = 3 (DESIGN.md §4).
  SystemParameters p;
  for (Scheme scheme :
       {Scheme::kNonClustered, Scheme::kImprovedBandwidth}) {
    EXPECT_NEAR(HoursToYears(MttdsHours(p, scheme, 5).value()), 3176862.3,
                1.0);
  }
}

TEST(ReliabilityModelTest, Section3FiveFailureExample) {
  // Section 3: 1000 disks, K = 5 concurrent failures -> > 250 million
  // years to degradation of service.
  const double hours =
      KConcurrentFailuresMeanHours(300000.0, 1.0, 1000, 5);
  EXPECT_GT(HoursToYears(hours), 250e6);
  EXPECT_LT(HoursToYears(hours), 350e6);
}

TEST(ReliabilityModelTest, KOneIsFirstFailure) {
  EXPECT_DOUBLE_EQ(KConcurrentFailuresMeanHours(300000.0, 1.0, 100, 1),
                   3000.0);
}

TEST(ReliabilityModelTest, LongerRepairHurts) {
  SystemParameters fast;
  SystemParameters slow;
  slow.disk.mttr_hours = 24.0;
  EXPECT_GT(
      MttfCatastrophicHours(fast, Scheme::kStreamingRaid, 5).value(),
      MttfCatastrophicHours(slow, Scheme::kStreamingRaid, 5).value());
}

}  // namespace
}  // namespace ftms
