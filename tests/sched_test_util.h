#ifndef FTMS_TESTS_SCHED_TEST_UTIL_H_
#define FTMS_TESTS_SCHED_TEST_UTIL_H_

#include <memory>
#include <utility>

#include "disk/disk_array.h"
#include "layout/layout.h"
#include "sched/cycle_scheduler.h"

namespace ftms {

// A self-contained scheduler under test: disks + layout + scheduler with
// consistent geometry.
struct SchedRig {
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<Layout> layout;
  std::unique_ptr<CycleScheduler> sched;
};

struct RigOptions {
  int slots_per_disk = 0;  // 0 = derive from the disk model
  NcTransition nc_transition = NcTransition::kDeferredRead;
  int buffer_servers = 3;
  bool ib_prefetch_parity = false;
  bool ib_mirror_read_balance = false;
  double object_rate_mb_s = 0.1875;
  // Worker threads for cluster-parallel cycles (SchedulerConfig::threads):
  // 0 = shared pool, 1 = serial, N > 1 = private N-worker pool.
  int threads = 0;
  // Private observability sinks (null = uninstrumented, the default).
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  // Private QoS sinks (null = FTMS_QOS-gated defaults, normally off in
  // tests).
  EventJournal* journal = nullptr;
  QosLedger* ledger = nullptr;
  // Private time-series sink (null = FTMS_TIMESERIES-gated default).
  TimeSeriesRecorder* timeseries = nullptr;
  // Override the per-disk capacity (0 = keep the model default). Small
  // disks keep rebuild-to-completion scenarios fast in tests.
  double disk_capacity_mb = 0;
};

inline SchedRig MakeRig(Scheme scheme, int parity_group_size, int num_disks,
                        const RigOptions& options = RigOptions()) {
  SchedRig rig;
  rig.layout =
      std::move(CreateLayout(scheme, num_disks, parity_group_size).value());
  DiskParameters disk;
  if (options.disk_capacity_mb > 0) {
    disk.capacity_mb = options.disk_capacity_mb;
  }
  rig.disks = std::make_unique<DiskArray>(std::move(
      DiskArray::Create(num_disks, rig.layout->disks_per_cluster(), disk)
          .value()));
  SchedulerConfig config;
  config.scheme = scheme;
  config.parity_group_size = parity_group_size;
  config.object_rate_mb_s = options.object_rate_mb_s;
  config.disk = disk;
  config.slots_per_disk = options.slots_per_disk;
  config.nc_transition = options.nc_transition;
  config.buffer_servers = options.buffer_servers;
  config.ib_prefetch_parity = options.ib_prefetch_parity;
  config.ib_mirror_read_balance = options.ib_mirror_read_balance;
  config.threads = options.threads;
  config.metrics = options.metrics;
  config.tracer = options.tracer;
  config.journal = options.journal;
  config.ledger = options.ledger;
  config.timeseries = options.timeseries;
  rig.sched = std::move(
      CreateScheduler(config, rig.disks.get(), rig.layout.get()).value());
  return rig;
}

// Convenience overload: an instrumented rig publishing into `metrics` (and
// optionally `tracer`), with default options otherwise.
inline SchedRig MakeRig(Scheme scheme, int parity_group_size, int num_disks,
                        MetricsRegistry* metrics, Tracer* tracer = nullptr) {
  RigOptions options;
  options.metrics = metrics;
  options.tracer = tracer;
  return MakeRig(scheme, parity_group_size, num_disks, options);
}

// An object whose home cluster is 0 (ids that are multiples of the
// cluster count keep tests readable).
inline MediaObject TestObject(int id, int64_t tracks,
                              double rate_mb_s = 0.1875) {
  MediaObject obj;
  obj.id = id;
  obj.name = "test_object_" + std::to_string(id);
  obj.rate_mb_s = rate_mb_s;
  obj.num_tracks = tracks;
  return obj;
}

}  // namespace ftms

#endif  // FTMS_TESTS_SCHED_TEST_UTIL_H_
