#include <gtest/gtest.h>

#include <tuple>

#include "sched/non_clustered_scheduler.h"
#include "tests/sched_test_util.h"

namespace ftms {
namespace {

// Systematic sweep of the Non-clustered transition over every failed
// data-disk position and both strategies, in the canonical Figures 5-7
// scenario (C = 5, one slot per disk per cycle, streams staggered at all
// group positions, fresh entries each cycle).

constexpr int kC = 5;

struct DrillOutcome {
  int64_t total_hiccups = 0;
  int64_t reconstructed = 0;
  int64_t per_stream[7] = {0};
};

DrillOutcome RunDrill(NcTransition transition, int failed_index) {
  RigOptions options;
  options.nc_transition = transition;
  options.slots_per_disk = 1;
  SchedRig rig = MakeRig(Scheme::kNonClustered, kC, 10, options);
  int next_object = 0;
  auto add = [&] {
    rig.sched->AddStream(TestObject(2 * next_object++, 8)).value();
  };
  for (int i = 0; i < kC - 2; ++i) {
    add();
    rig.sched->RunCycle();
  }
  rig.sched->OnDiskFailed(failed_index, /*mid_cycle=*/false);
  for (int i = 0; i < 4; ++i) {
    add();
    rig.sched->RunCycle();
  }
  rig.sched->RunCycles(24);
  DrillOutcome outcome;
  outcome.total_hiccups = rig.sched->metrics().hiccups;
  outcome.reconstructed = rig.sched->metrics().reconstructed;
  for (int i = 0; i < next_object && i < 7; ++i) {
    outcome.per_stream[i] = rig.sched->FindStream(i)->hiccup_count();
  }
  return outcome;
}

class NcSweep : public ::testing::TestWithParam<int> {};

TEST_P(NcSweep, DeferredNeverWorseThanImmediate) {
  const int failed = GetParam();
  const DrillOutcome immediate =
      RunDrill(NcTransition::kImmediateShift, failed);
  const DrillOutcome deferred =
      RunDrill(NcTransition::kDeferredRead, failed);
  EXPECT_LE(deferred.total_hiccups, immediate.total_hiccups);
}

TEST_P(NcSweep, ImmediateLossesAreTheDisplacementBound) {
  // Under the immediate shift with saturated slots, every remaining
  // track of every mid-group stream is displaced or failed:
  // sum_{j=1}^{C-2} (C-1-j) = (C-1)(C-2)/2, independent of the failed
  // position (the k=2 case coincides with the paper's 1+2+...+(C-k)).
  const DrillOutcome immediate =
      RunDrill(NcTransition::kImmediateShift, GetParam());
  EXPECT_EQ(immediate.total_hiccups, (kC - 1) * (kC - 2) / 2);
}

TEST_P(NcSweep, EnteringStreamsAlwaysReconstruct) {
  // Streams that enter their group after the failure never hiccup, in
  // either strategy (Observation 2 holds for them).
  for (NcTransition transition :
       {NcTransition::kImmediateShift, NcTransition::kDeferredRead}) {
    const DrillOutcome outcome = RunDrill(transition, GetParam());
    // Streams 3..6 entered at/after the failure cycle.
    for (int s = 3; s < 7; ++s) {
      EXPECT_EQ(outcome.per_stream[s], 0)
          << "stream " << s << " failed index " << GetParam();
    }
    EXPECT_GE(outcome.reconstructed, 4);
  }
}

TEST_P(NcSweep, DeferredLossesMatchUnreconstructablePlusDisplacement) {
  // Deferred: a mid-group stream loses the failed track iff its position
  // had not yet passed it (j <= k_f, j > 0), plus one displaced track
  // per just-in-time burst that collides with a scheduled read.
  const int failed = GetParam();
  const DrillOutcome deferred =
      RunDrill(NcTransition::kDeferredRead, failed);
  // Streams at positions 1..C-2 at failure: those with position <= k_f
  // lose their failed-disk track.
  int64_t unreconstructable = 0;
  for (int j = 1; j <= kC - 2; ++j) {
    if (j <= failed) ++unreconstructable;
  }
  EXPECT_GE(deferred.total_hiccups, unreconstructable);
  if (failed == 0) {
    // Degenerate case: the failed track is the FIRST of each group, so
    // the "deferred" burst happens at group entry — identical to the
    // immediate shift.
    const DrillOutcome immediate =
        RunDrill(NcTransition::kImmediateShift, failed);
    EXPECT_EQ(deferred.total_hiccups, immediate.total_hiccups);
  } else {
    // Displacement adds at most one track per mid-group stream.
    EXPECT_LE(deferred.total_hiccups, unreconstructable + (kC - 2));
  }
}

INSTANTIATE_TEST_SUITE_P(FailedDataDisk, NcSweep,
                         ::testing::Range(0, kC - 1),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace ftms
