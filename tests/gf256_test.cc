#include "parity/gf256.h"

#include <gtest/gtest.h>

#include "parity/parity.h"

namespace ftms {
namespace {

using gf256::Div;
using gf256::Exp;
using gf256::GetTables;
using gf256::Inv;
using gf256::Log;
using gf256::Mul;
using gf256::MulSlow;

TEST(Gf256Test, ExpLogRoundTrip) {
  // log(exp(i)) == i for every exponent, exp(log(a)) == a for every
  // nonzero element, and the generator has full order 255.
  for (int i = 0; i < 255; ++i) {
    EXPECT_EQ(Log(Exp(i)), i);
  }
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Exp(Log(static_cast<uint8_t>(a))), a);
  }
  EXPECT_EQ(Exp(0), 1);
  EXPECT_EQ(Exp(255), 1);
  EXPECT_EQ(Exp(1), gf256::kGenerator);
}

TEST(Gf256Test, NegativeAndLargeExponentsWrap) {
  for (int e = -600; e <= 600; ++e) {
    int r = e % 255;
    if (r < 0) r += 255;
    EXPECT_EQ(Exp(e), Exp(r)) << "e=" << e;
  }
}

TEST(Gf256Test, TableMulMatchesBitwiseReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                MulSlow(static_cast<uint8_t>(a), static_cast<uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256Test, FieldAxiomsSpotChecks) {
  // Commutativity and associativity over a pseudo-random sample, plus
  // distributivity over XOR (the field addition).
  uint32_t x = 12345;
  for (int i = 0; i < 2000; ++i) {
    x = x * 1664525u + 1013904223u;
    const uint8_t a = static_cast<uint8_t>(x >> 8);
    const uint8_t b = static_cast<uint8_t>(x >> 16);
    const uint8_t c = static_cast<uint8_t>(x >> 24);
    EXPECT_EQ(Mul(a, b), Mul(b, a));
    EXPECT_EQ(Mul(Mul(a, b), c), Mul(a, Mul(b, c)));
    EXPECT_EQ(Mul(a, static_cast<uint8_t>(b ^ c)),
              Mul(a, b) ^ Mul(a, c));
  }
}

TEST(Gf256Test, InverseAndDivision) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t ua = static_cast<uint8_t>(a);
    EXPECT_EQ(Mul(ua, Inv(ua)), 1) << a;
    EXPECT_EQ(Div(ua, ua), 1) << a;
  }
  EXPECT_EQ(Mul(0, 17), 0);
  EXPECT_EQ(Mul(17, 0), 0);
  EXPECT_EQ(Mul(1, 17), 17);
}

TEST(Gf256Test, NibbleTablesComposeTheFullMultiply) {
  for (int c : {0, 1, 2, 29, 0x1d, 127, 255}) {
    uint8_t lo[16], hi[16];
    gf256::NibbleTables(static_cast<uint8_t>(c), lo, hi);
    for (int v = 0; v < 256; ++v) {
      ASSERT_EQ(static_cast<uint8_t>(lo[v & 15] ^ hi[v >> 4]),
                Mul(static_cast<uint8_t>(c), static_cast<uint8_t>(v)))
          << "c=" << c << " v=" << v;
    }
  }
}

TEST(Gf256Test, GfniMatrixBitsEncodeBasisImages) {
  // Byte k, bit j of the affine matrix must be bit (7-k) of c * 2^j —
  // the packing GF2P8AFFINEQB consumes (verified against hardware by
  // pq_kernel_test's cross-kernel check when the gfni kernel runs).
  for (int c : {0, 1, 2, 3, 0x1d, 0x80, 0xfd, 255}) {
    const uint64_t m = gf256::GfniMatrix(static_cast<uint8_t>(c));
    for (int k = 0; k < 8; ++k) {
      const uint8_t row = static_cast<uint8_t>(m >> (8 * k));
      for (int j = 0; j < 8; ++j) {
        const uint8_t image = Mul(static_cast<uint8_t>(c),
                                  static_cast<uint8_t>(1u << j));
        ASSERT_EQ((row >> j) & 1, (image >> (7 - k)) & 1)
            << "c=" << c << " k=" << k << " j=" << j;
      }
    }
  }
}

TEST(Gf256Test, TwoDataCoefficientsSolveTheErasureSystem) {
  // For every missing pair (x, y), A and B must satisfy
  //   A ^ B*g^x == 1   and   A ^ B*g^y == 0
  // so that A*P' ^ B*Q' recovers D_x exactly.
  for (int x = 0; x < 16; ++x) {
    for (int y = x + 1; y < 16; ++y) {
      uint8_t a, b;
      gf256::TwoDataCoefficients(x, y, &a, &b);
      EXPECT_EQ(a ^ Mul(b, Exp(x)), 1) << x << "," << y;
      EXPECT_EQ(a ^ Mul(b, Exp(y)), 0) << x << "," << y;
    }
  }
}

TEST(Gf256Test, KnownQSyndromeVector) {
  // Hand-checked example in the standard RAID-6 field (0x11d, g=2):
  // D = {0x01, 0x02, 0x04} gives
  //   Q = 1*1 ^ 2*2 ^ 4*4 = 0x01 ^ 0x04 ^ 0x10 = 0x15.
  Block d0 = {0x01}, d1 = {0x02}, d2 = {0x04};
  const Block data[] = {d0, d1, d2};
  Block p, q;
  ASSERT_TRUE(ComputePq(data, &p, &q).ok());
  EXPECT_EQ(p[0], 0x01 ^ 0x02 ^ 0x04);
  EXPECT_EQ(q[0], 0x15);
  // And the g^i weights themselves: 2*0x80 wraps through the polynomial.
  EXPECT_EQ(Mul(2, 0x80), 0x11d ^ 0x100);
}

}  // namespace
}  // namespace ftms
