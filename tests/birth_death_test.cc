#include "reliability/birth_death.h"

#include <gtest/gtest.h>

#include "model/reliability_model.h"
#include "reliability/markov_sim.h"

namespace ftms {
namespace {

TEST(BirthDeathTest, KOneIsFirstFailureExactly) {
  // No repair dynamics involved: MTTF/D.
  EXPECT_DOUBLE_EQ(
      ExactKConcurrentMeanHours(300000, 1, 1000, 1).value(), 300.0);
  EXPECT_DOUBLE_EQ(AsymptoticKConcurrentMeanHours(300000, 1, 1000, 1),
                   300.0);
}

TEST(BirthDeathTest, ExactApproachesAsymptoteForRareEvents) {
  // MTTR << MTTF/D: the asymptote including (K-1)! converges to the
  // exact hitting time.
  for (int k : {2, 3, 4}) {
    const double exact =
        ExactKConcurrentMeanHours(300000, 1, 100, k).value();
    const double asym =
        AsymptoticKConcurrentMeanHours(300000, 1, 100, k);
    EXPECT_NEAR(exact / asym, 1.0, 0.01) << "k=" << k;
  }
}

TEST(BirthDeathTest, PaperEquation6UnderestimatesByFactorial) {
  // Equation (6) = asymptote WITHOUT the (K-1)! factor.
  const double eq6 = KConcurrentFailuresMeanHours(300000, 1, 1000, 5);
  const double exact =
      ExactKConcurrentMeanHours(300000, 1, 1000, 5).value();
  EXPECT_NEAR(exact / eq6, 24.0, 0.5);  // 4! = 24
}

TEST(BirthDeathTest, ExactMatchesMonteCarloInHarshRegime) {
  // Where the asymptote is poor (repairs not fast relative to failures),
  // the exact chain still matches simulation.
  const double exact = ExactKConcurrentMeanHours(100, 2, 20, 3).value();
  ReliabilitySimConfig config;
  config.num_disks = 20;
  config.mttf_hours = 100.0;
  config.mttr_hours = 2.0;
  config.trials = 600;
  const ReliabilityEstimate sim = EstimateKConcurrent(config, 3).value();
  EXPECT_NEAR(sim.mean_hours, exact, 0.15 * exact);
  // And the asymptote is visibly off here (finite-rate corrections).
  const double asym = AsymptoticKConcurrentMeanHours(100, 2, 20, 3);
  EXPECT_GT(std::abs(asym - exact) / exact, 0.02);
}

TEST(BirthDeathTest, MonotoneInK) {
  double prev = 0;
  for (int k = 1; k <= 6; ++k) {
    const double exact =
        ExactKConcurrentMeanHours(1000, 5, 50, k).value();
    EXPECT_GT(exact, prev);
    prev = exact;
  }
}

TEST(BirthDeathTest, Validation) {
  EXPECT_FALSE(ExactKConcurrentMeanHours(-1, 1, 10, 2).ok());
  EXPECT_FALSE(ExactKConcurrentMeanHours(1, 0, 10, 2).ok());
  EXPECT_FALSE(ExactKConcurrentMeanHours(1, 1, 0, 2).ok());
  EXPECT_FALSE(ExactKConcurrentMeanHours(1, 1, 10, 0).ok());
  EXPECT_FALSE(ExactKConcurrentMeanHours(1, 1, 10, 11).ok());
}

}  // namespace
}  // namespace ftms
