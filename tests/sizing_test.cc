#include "model/sizing.h"

#include <gtest/gtest.h>

#include "model/capacity.h"
#include "util/units.h"

namespace ftms {
namespace {

TEST(SizingTest, IntroductionMovieCounts) {
  // Section 1: 1000 x 1 GB disks hold ~300 MPEG-2 or ~900 MPEG-1
  // 90-minute movies.
  EXPECT_NEAR(MoviesStorable(1000, 1000.0, kMpeg2RateMbS, 90.0), 300.0,
              35.0);
  EXPECT_NEAR(MoviesStorable(1000, 1000.0, kMpeg1RateMbS, 90.0), 900.0,
              100.0);
}

TEST(SizingTest, IntroductionViewerCounts) {
  // Section 1: at 4 MB/s per disk, 1000 disks feed ~6500 MPEG-2 (the
  // paper rounds 7111 down for overheads) or ~20,000 MPEG-1 viewers.
  EXPECT_NEAR(ViewersSupportable(1000, 4.0, kMpeg2RateMbS), 7111.0, 5.0);
  EXPECT_GT(ViewersSupportable(1000, 4.0, kMpeg2RateMbS), 6500.0);
  EXPECT_NEAR(ViewersSupportable(1000, 4.0, kMpeg1RateMbS), 21333.0,
              5.0);
  EXPECT_GT(ViewersSupportable(1000, 4.0, kMpeg1RateMbS), 20000.0);
}

TEST(SizingTest, MixedRateReducesToSingleRateAtEndpoints) {
  SystemParameters p;
  const double data_disks = 80.0;
  // fraction_high = 0: exactly the base-rate formula.
  const double base =
      MixedRateMaxStreams(p, 4, data_disks, kMpeg2RateMbS, 0.0).value();
  EXPECT_NEAR(base, StreamsPerDataDisk(p, 4) * data_disks, 1e-9);
  // fraction_high = 1 with rate_high == base rate: same thing.
  const double same_rate =
      MixedRateMaxStreams(p, 4, data_disks, p.object_rate_mb_s, 1.0)
          .value();
  EXPECT_NEAR(same_rate, base, 1e-9);
}

TEST(SizingTest, MixedRateMonotoneInMpeg2Fraction) {
  SystemParameters p;
  double prev = 1e18;
  for (double f = 0.0; f <= 1.0001; f += 0.1) {
    const double n =
        MixedRateMaxStreams(p, 4, 80.0, kMpeg2RateMbS, f).value();
    EXPECT_LT(n, prev);
    prev = n;
  }
}

TEST(SizingTest, MixedRateBandwidthConservation) {
  // The delivered bandwidth at capacity is the same for any mix: the
  // constraint bounds aggregate rate, not stream count.
  SystemParameters p;
  const double n0 =
      MixedRateMaxStreams(p, 4, 80.0, kMpeg2RateMbS, 0.0).value();
  const double n1 =
      MixedRateMaxStreams(p, 4, 80.0, kMpeg2RateMbS, 1.0).value();
  EXPECT_NEAR(n0 * p.object_rate_mb_s, n1 * kMpeg2RateMbS,
              0.01 * n0 * p.object_rate_mb_s);
}

TEST(SizingTest, MixedRateValidation) {
  SystemParameters p;
  EXPECT_FALSE(MixedRateMaxStreams(p, 0, 80.0, 1.0, 0.5).ok());
  EXPECT_FALSE(MixedRateMaxStreams(p, 4, 80.0, -1.0, 0.5).ok());
  EXPECT_FALSE(MixedRateMaxStreams(p, 4, 80.0, 1.0, 1.5).ok());
}

}  // namespace
}  // namespace ftms
