#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <tuple>

#include "qos/event_journal.h"
#include "reliability/failure_process.h"
#include "sim/simulator.h"
#include "tests/sched_test_util.h"
#include "util/metrics.h"

namespace ftms {
namespace {

// The event-engine determinism contract (DESIGN.md §11): the calendar
// queue and the binary-heap oracle must produce BYTE-IDENTICAL
// simulations — same event order, same journal, same metrics registry,
// same scheduler counters — for every scheme, healthy or under failure
// injection, at every worker-thread count. A simulation driven through
// the simulator (periodic scheduler cycles + exponential failure/repair
// events) is replayed once per queue kind and the artifacts compared
// verbatim.

// Drops the one wall-clock-valued line from a registry dump
// (ftms_sched_cycle_wall_us_sum measures real elapsed time, not simulated
// state, so it legitimately differs run to run).
std::string ScrubWallClock(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size() - 1;
    const std::string_view line(text.data() + pos, eol - pos + 1);
    if (line.find("cycle_wall_us_sum") == std::string_view::npos) {
      out.append(line);
    }
    pos = eol + 1;
  }
  return out;
}

struct EngineRun {
  std::string journal;
  std::string registry;
  SchedulerMetrics metrics;
  uint64_t events_processed = 0;
};

EngineRun RunScenario(Scheme scheme, bool with_failures, int threads,
                      EventQueueKind kind) {
  MetricsRegistry registry;
  EventJournal journal;
  RigOptions options;
  options.threads = threads;
  options.metrics = &registry;
  options.journal = &journal;
  const int disks = scheme == Scheme::kImprovedBandwidth ? 8 : 10;
  SchedRig rig = MakeRig(scheme, 5, disks, options);
  rig.sched->AddStream(TestObject(0, 96)).value();
  rig.sched->AddStream(TestObject(1, 96)).value();

  Simulator sim(kind);
  sim.BindInstruments(registry.GetCounter("sim_events_total"),
                      registry.GetGauge("sim_events_pending"));
  sim.BindJournal(&journal);

  // Absurdly flaky shadow disks make several failure/repair episodes land
  // inside the run; the scheduler is told about one failure at a time.
  std::unique_ptr<DiskArray> shadow;
  std::unique_ptr<FailureProcess> process;
  int sched_failed = -1;
  if (with_failures) {
    DiskParameters flaky;
    flaky.mttf_hours = 0.002;
    flaky.mttr_hours = 0.0005;
    shadow = std::make_unique<DiskArray>(std::move(
        DiskArray::Create(disks, rig.layout->disks_per_cluster(), flaky)
            .value()));
    process = std::make_unique<FailureProcess>(
        &sim, shadow.get(), /*seed=*/11,
        FailureProcess::Callbacks{
            .on_failure =
                [&](int disk) {
                  if (sched_failed < 0) {
                    sched_failed = disk;
                    rig.sched->OnDiskFailed(disk, /*mid_cycle=*/false);
                  }
                },
            .on_repair =
                [&](int disk) {
                  if (disk == sched_failed) {
                    rig.sched->OnDiskRepaired(disk);
                    sched_failed = -1;
                  }
                }});
    process->Start();
  }

  const double cycle_s = rig.sched->CycleSeconds();
  PeriodicTimer cycle_timer(&sim, cycle_s, [&] {
    rig.sched->RunCycles(1);
    return true;
  });
  cycle_timer.Start(0.0);
  sim.RunUntil(150.0 * cycle_s);
  cycle_timer.Cancel();

  EngineRun out;
  out.journal = journal.ToJsonl();
  out.registry = ScrubWallClock(registry.PrometheusText());
  out.metrics = rig.sched->metrics();
  out.events_processed = sim.events_processed();
  return out;
}

using Scenario = std::tuple<Scheme, bool, int>;

class EventEngineDiff : public ::testing::TestWithParam<Scenario> {};

TEST_P(EventEngineDiff, HeapAndCalendarAreByteIdentical) {
  const auto [scheme, with_failures, threads] = GetParam();
  const EngineRun heap =
      RunScenario(scheme, with_failures, threads, EventQueueKind::kHeap);
  const EngineRun cal =
      RunScenario(scheme, with_failures, threads, EventQueueKind::kCalendar);

  EXPECT_GT(heap.events_processed, 100u);  // the drill actually ran
  EXPECT_EQ(heap.events_processed, cal.events_processed);
  EXPECT_EQ(heap.journal, cal.journal);
  EXPECT_EQ(heap.registry, cal.registry);
  EXPECT_EQ(heap.metrics.cycles, cal.metrics.cycles);
  EXPECT_EQ(heap.metrics.data_reads, cal.metrics.data_reads);
  EXPECT_EQ(heap.metrics.parity_reads, cal.metrics.parity_reads);
  EXPECT_EQ(heap.metrics.failed_reads, cal.metrics.failed_reads);
  EXPECT_EQ(heap.metrics.dropped_reads, cal.metrics.dropped_reads);
  EXPECT_EQ(heap.metrics.tracks_delivered, cal.metrics.tracks_delivered);
  EXPECT_EQ(heap.metrics.hiccups, cal.metrics.hiccups);
  EXPECT_EQ(heap.metrics.reconstructed, cal.metrics.reconstructed);
  EXPECT_EQ(heap.metrics.shift_cascades, cal.metrics.shift_cascades);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, EventEngineDiff,
    ::testing::Combine(::testing::Values(Scheme::kStreamingRaid,
                                         Scheme::kStaggeredGroup,
                                         Scheme::kNonClustered,
                                         Scheme::kImprovedBandwidth),
                       ::testing::Bool(),          // failure injection
                       ::testing::Values(1, 2, 8)  // worker threads
                       ));

// The same drill must also be invariant to the worker-thread count when
// the queue kind is fixed — the engine change must not have introduced a
// thread-count dependence.
TEST(EventEngineDiffTest, CalendarRunsThreadCountInvariant) {
  const EngineRun t1 = RunScenario(Scheme::kStreamingRaid, true, 1,
                                   EventQueueKind::kCalendar);
  const EngineRun t8 = RunScenario(Scheme::kStreamingRaid, true, 8,
                                   EventQueueKind::kCalendar);
  EXPECT_EQ(t1.journal, t8.journal);
  EXPECT_EQ(t1.metrics.tracks_delivered, t8.metrics.tracks_delivered);
  EXPECT_EQ(t1.metrics.hiccups, t8.metrics.hiccups);
}

}  // namespace
}  // namespace ftms
