// VOD operations console: the full Figure 1 pipeline in one run —
// a tertiary library feeding a disk working set through LRU staging,
// viewers queueing when admission is full, a disk failure with online
// spare rebuild, and a per-cycle CSV timeline written for plotting.
//
//   $ ./vod_operations [minutes_simulated] [trace.csv]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "server/server.h"
#include "server/staging.h"
#include "server/trace.h"
#include "stream/request_queue.h"
#include "stream/workload.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace ftms;
  const double minutes = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::string trace_path =
      argc > 2 ? argv[2] : "/tmp/ftms_vod_timeline.csv";

  // A deliberately small server so admission pressure and staging churn
  // actually happen within the demo horizon.
  ServerConfig config;
  config.scheme = Scheme::kNonClustered;  // memory-lean scheme
  config.parity_group_size = 5;
  config.params.num_disks = 10;
  config.params.k_reserve = 2;
  config.params.disk.capacity_mb = 50.0;  // 1000 tracks per disk
  config.admission_override = 12;
  auto server = std::move(MultimediaServer::Create(config).value());

  // The permanent library lives on tape; only a few titles fit on disk.
  TertiaryStore tertiary{TertiaryParameters{}};
  std::set<int> active_titles;
  StagingManager staging(
      &server->mutable_catalog(), &tertiary, config.params.disk.track_mb,
      [&](int id) { return active_titles.count(id) == 0; });
  std::vector<MediaObject> library;
  for (int i = 0; i < 10; ++i) {
    MediaObject title;
    title.id = i;
    title.name = "title_" + std::to_string(i);
    title.rate_mb_s = config.params.object_rate_mb_s;
    title.num_tracks = 2000;  // ~8.9 minutes of video
    library.push_back(title);
    staging.AddToLibrary(title).ok();
  }

  WorkloadConfig wconfig;
  wconfig.arrival_rate_per_s = 0.05;
  wconfig.zipf_theta = 0.5;
  wconfig.seed = 7;
  WorkloadGenerator workload(wconfig, library);
  RequestQueue queue(/*patience_s=*/300.0);
  TraceRecorder trace(&server->scheduler(), &server->disks());

  const double horizon_s = minutes * 60.0;
  std::vector<StreamRequest> arrivals = workload.GenerateUntil(horizon_s);
  size_t next = 0;
  int served = 0;
  int staged_waits = 0;
  bool failed_once = false;
  std::map<int, double> title_ready_s;  // staging completion times

  auto try_start = [&](const StreamRequest& request, double now) -> bool {
    StatusOr<double> ready = staging.EnsureResident(request.object_id, now);
    if (!ready.ok()) return false;  // no space: viewer keeps waiting
    if (*ready > now) {
      ++staged_waits;
      title_ready_s[request.object_id] = *ready;
      return false;  // staging in progress; retry later
    }
    auto pending = title_ready_s.find(request.object_id);
    if (pending != title_ready_s.end() && pending->second > now) {
      return false;  // tape transfer still running
    }
    if (!server->StartStream(request.object_id).ok()) return false;
    active_titles.insert(request.object_id);
    staging.MarkUse(request.object_id, now);
    ++served;
    return true;
  };

  while (server->NowSeconds() < horizon_s) {
    const double now = server->NowSeconds();
    // New arrivals join the queue; the queue head retries each cycle.
    while (next < arrivals.size() && arrivals[next].arrival_s <= now) {
      queue.Enqueue(arrivals[next], now);
      ++next;
    }
    while (const StreamRequest* head = queue.Peek(now)) {
      if (!try_start(*head, now)) break;  // capacity or tape transfer
      StreamRequest admitted;
      queue.Dequeue(now, &admitted);
    }
    // Operational drama mid-run: a disk dies and a spare rebuild starts.
    if (!failed_once && now > horizon_s / 3) {
      failed_once = true;
      server->FailDisk(2).ok();
      server->StartRebuild(2).ok();
      std::printf("[%8.1f s] disk 2 failed; spare rebuild started\n", now);
    }
    server->RunCycles(1);
    trace.Sample();
    // Titles with no active stream become evictable.
    std::set<int> still_active;
    for (const auto& s : server->scheduler().streams()) {
      if (s->state() == StreamState::kActive) {
        still_active.insert(s->object().id);
      }
    }
    active_titles = still_active;
  }

  WriteCsv(trace.samples(), trace_path).ok();
  const SchedulerMetrics& m = server->scheduler().metrics();
  std::printf("\n==== end of shift (%.0f min simulated) ====\n", minutes);
  std::printf("viewers served            : %d (of %zu arrivals)\n", served,
              arrivals.size());
  std::printf("still queued / reneged    : %zu / %lld\n", queue.size(),
              static_cast<long long>(queue.reneged_total()));
  std::printf("mean admission wait       : %.1f s (max %.1f)\n",
              queue.wait_stats().mean(), queue.wait_stats().max());
  std::printf("titles staged from tape   : %lld (%.0f MB moved, %lld "
              "evictions)\n",
              static_cast<long long>(staging.stage_ins()),
              staging.mb_staged(),
              static_cast<long long>(staging.evictions()));
  std::printf("spare rebuild             : %s (%.0f%% done)\n",
              server->rebuild().Active() ? "in progress" : "complete",
              server->rebuild().Progress() * 100);
  std::printf("delivered / hiccups       : %lld / %lld\n",
              static_cast<long long>(m.tracks_delivered),
              static_cast<long long>(m.hiccups));
  std::printf("timeline CSV              : %s (%zu cycles)\n",
              trace_path.c_str(), trace.samples().size());
  return 0;
}
