// Failure drill: subject all four schemes to the same failure scenario
// and compare what viewers experience — the operational view of the
// paper's Sections 2-4.
//
//   $ ./failure_drill [cycles_before_failure]
//
// Scenario: a busy server, one data disk dies (once at a cycle boundary,
// once mid-sweep), is repaired an hour later. For the Non-clustered
// scheme both transition strategies are shown.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qos/event_journal.h"
#include "qos/qos_ledger.h"
#include "server/server.h"

namespace {

struct DrillResult {
  std::string label;
  long long hiccups_boundary = 0;
  long long hiccups_mid = 0;
  long long reconstructed = 0;
  long long buffer_peak = 0;
  // QoS-ledger view of the mid-cycle run: who paid, and how badly.
  long long worst_stream_hiccups = 0;
  long long slo_breaches = 0;
  std::vector<ftms::StreamQosRecord> mid_records;
  std::vector<ftms::QosEvent> mid_events;
};

DrillResult Drill(const std::string& label, ftms::Scheme scheme,
                  ftms::NcTransition transition, int warmup_cycles) {
  using namespace ftms;
  DrillResult result;
  result.label = label;
  for (int mid = 0; mid <= 1; ++mid) {
    // Private QoS sinks — the drill observes each run through the ledger
    // instead of relying on the FTMS_QOS-gated globals.
    EventJournal journal;
    QosLedger ledger;
    ledger.set_journal(&journal);

    ServerConfig config;
    config.scheme = scheme;
    config.parity_group_size = 5;
    config.params.num_disks =
        scheme == Scheme::kImprovedBandwidth ? 16 : 20;
    config.params.k_reserve = 2;
    config.nc_transition = transition;
    config.journal = &journal;
    config.ledger = &ledger;
    auto server = std::move(MultimediaServer::Create(config).value());

    MediaObject movie;
    movie.id = 0;
    movie.rate_mb_s = config.params.object_rate_mb_s;
    movie.num_tracks = 400;
    server->AddObject(movie).ok();
    // Stagger admissions one cycle apart so viewers sit at different
    // positions within their parity groups when the disk dies — the
    // population mix of Figures 5-7.
    for (int viewer = 0; viewer < 8; ++viewer) {
      server->StartStream(0).value();
      server->RunCycles(1);
    }

    server->RunCycles(warmup_cycles);
    server->FailDisk(3, /*mid_cycle=*/mid == 1).ok();
    server->RunCycles(60);
    server->RepairDisk(3).ok();
    server->RunCycles(600);  // drain all streams

    const SchedulerMetrics& m = server->scheduler().metrics();
    (mid == 0 ? result.hiccups_boundary : result.hiccups_mid) = m.hiccups;
    result.reconstructed += m.reconstructed;
    result.buffer_peak =
        std::max(result.buffer_peak,
                 static_cast<long long>(
                     server->scheduler().buffer_pool().peak_in_use()));
    if (mid == 1) {
      result.mid_records = ledger.Capture(server->scheduler().streams());
      result.worst_stream_hiccups = WorstStreamHiccups(result.mid_records);
      result.slo_breaches =
          CountBreaches(ledger.Evaluate(server->scheduler().streams()));
      result.mid_events = journal.Snapshot();
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftms;
  const int warmup = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf(
      "Failure drill: 8 viewers, disk 3 dies after %d cycles (boundary "
      "and mid-cycle),\nrepaired 60 cycles later.\n\n",
      warmup);
  std::printf("%-34s %10s %10s %14s %12s %11s %9s\n", "Scheme", "boundary",
              "mid-cycle", "reconstructed", "buffer peak", "worst-strm",
              "breaches");

  const DrillResult results[] = {
      Drill("Streaming RAID", Scheme::kStreamingRaid,
            NcTransition::kDeferredRead, warmup),
      Drill("Staggered-group", Scheme::kStaggeredGroup,
            NcTransition::kDeferredRead, warmup),
      Drill("Non-clustered (immediate)", Scheme::kNonClustered,
            NcTransition::kImmediateShift, warmup),
      Drill("Non-clustered (deferred)", Scheme::kNonClustered,
            NcTransition::kDeferredRead, warmup),
      Drill("Improved-bandwidth", Scheme::kImprovedBandwidth,
            NcTransition::kDeferredRead, warmup),
  };
  for (const DrillResult& r : results) {
    std::printf("%-34s %10lld %10lld %14lld %12lld %11lld %9lld\n",
                r.label.c_str(), r.hiccups_boundary, r.hiccups_mid,
                r.reconstructed, r.buffer_peak, r.worst_stream_hiccups,
                r.slo_breaches);
  }

  // Per-viewer attribution for the scheme where placement matters most:
  // Figure 6's stream-position dependence, read straight off the ledger.
  const DrillResult& nc = results[2];
  std::printf(
      "\nPer-viewer impact, %s (mid-cycle failure):\n"
      "%-8s %10s %10s %12s\n",
      nc.label.c_str(), "viewer", "hiccups", "degraded", "continuity");
  for (const StreamQosRecord& rec : nc.mid_records) {
    std::printf("%-8d %10lld %10lld %12.4f\n", rec.id,
                static_cast<long long>(rec.hiccups),
                static_cast<long long>(rec.degraded_cycles),
                rec.continuity);
  }

  std::printf("\nJournal of that run (semantic events on simulated time):\n");
  for (const QosEvent& ev : nc.mid_events) {
    std::printf("  cycle %-5lld %-26s disk %-3d stream %-3d value %lld\n",
                static_cast<long long>(ev.cycle),
                std::string(QosEventKindName(ev.kind)).c_str(), ev.disk,
                ev.stream, static_cast<long long>(ev.value));
  }
  std::printf(
      "\nHow to read this (paper Sections 2-4):\n"
      " * SR and SG mask everything — at 2C and ~C/2+2 buffers per "
      "stream.\n"
      " * NC runs on 2 buffers per stream but loses a few tracks during\n"
      "   the transition; the deferred strategy loses fewer.\n"
      " * IB uses every disk's bandwidth in normal mode; only a failure\n"
      "   in the middle of a sweep costs one isolated hiccup per\n"
      "   affected stream.\n");
  return 0;
}
