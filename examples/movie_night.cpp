// Movie night: a workload-driven evening at a video-on-demand server.
// Poisson viewer arrivals pick titles from a Zipf-skewed catalog while
// flaky disks fail and get swapped in the background — the full Figure 1
// system in one run.
//
//   $ ./movie_night [scheme:sr|sg|nc|ib] [hours]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "reliability/failure_process.h"
#include "server/server.h"
#include "sim/simulator.h"
#include "stream/workload.h"
#include "util/units.h"

namespace {

ftms::Scheme ParseScheme(const char* arg) {
  using ftms::Scheme;
  if (std::strcmp(arg, "sg") == 0) return Scheme::kStaggeredGroup;
  if (std::strcmp(arg, "nc") == 0) return Scheme::kNonClustered;
  if (std::strcmp(arg, "ib") == 0) return Scheme::kImprovedBandwidth;
  return Scheme::kStreamingRaid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftms;
  const Scheme scheme = ParseScheme(argc > 1 ? argv[1] : "sr");
  const double hours = argc > 2 ? std::atof(argv[2]) : 0.5;

  ServerConfig config;
  config.scheme = scheme;
  config.parity_group_size = 5;
  config.params.num_disks =
      scheme == Scheme::kImprovedBandwidth ? 40 : 40;
  config.params.k_reserve = 3;
  auto server = std::move(MultimediaServer::Create(config).value());

  // A catalog of ten-minute "features" (full movies make the demo long).
  std::vector<MediaObject> catalog;
  for (int i = 0; i < 12; ++i) {
    MediaObject title = MakeMovie(
        i, "title_" + std::to_string(i), /*minutes=*/10.0,
        config.params.object_rate_mb_s, config.params.disk.track_mb);
    catalog.push_back(title);
    server->AddObject(title).ok();
  }

  WorkloadConfig wconfig;
  wconfig.arrival_rate_per_s = 0.05;  // a viewer every ~20 s
  wconfig.zipf_theta = 0.271;         // classic video-store skew
  wconfig.seed = 2026;
  WorkloadGenerator workload(wconfig, catalog);

  // Background failures: drives three orders of magnitude flakier than
  // the Table 1 disks so an evening actually sees a few swaps.
  Simulator sim;
  DiskParameters flaky = config.params.disk;
  flaky.mttf_hours = 3.0;
  flaky.mttr_hours = 0.05;
  auto shadow = std::make_unique<DiskArray>(std::move(
      DiskArray::Create(config.params.num_disks,
                        server->layout().disks_per_cluster(), flaky)
          .value()));
  int failures = 0;
  FailureProcess process(
      &sim, shadow.get(), /*seed=*/11,
      {.on_failure =
           [&](int disk) {
             ++failures;
             std::printf("[%8.1f s] disk %d FAILED (%d down)\n", sim.Now(),
                         disk, shadow->NumFailed());
             server->FailDisk(disk).ok();
           },
       .on_repair =
           [&](int disk) {
             std::printf("[%8.1f s] disk %d swapped + reloaded\n",
                         sim.Now(), disk);
             server->RepairDisk(disk).ok();
           }});
  process.Start();

  const double horizon_s = hours * kSecondsPerHour;
  std::vector<StreamRequest> arrivals = workload.GenerateUntil(horizon_s);
  size_t next_arrival = 0;
  int admitted = 0;
  int rejected = 0;

  const double cycle_s = server->scheduler().CycleSeconds();
  std::printf(
      "movie night on a %s server: %zu arrivals over %.1f h, cycle "
      "%.3f s\n\n",
      std::string(SchemeName(scheme)).c_str(), arrivals.size(), hours,
      cycle_s);

  while (server->NowSeconds() < horizon_s) {
    sim.RunUntil(server->NowSeconds());
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_s <= server->NowSeconds()) {
      if (server->StartStream(arrivals[next_arrival].object_id).ok()) {
        ++admitted;
      } else {
        ++rejected;
      }
      ++next_arrival;
    }
    server->RunCycles(1);
  }

  const SchedulerMetrics& m = server->scheduler().metrics();
  std::printf("\n==== closing time ====\n");
  std::printf("viewers admitted/rejected : %d / %d (capacity %d)\n",
              admitted, rejected, server->admission().capacity());
  std::printf("disk failures survived    : %d\n", failures);
  std::printf("tracks delivered          : %lld\n",
              static_cast<long long>(m.tracks_delivered));
  std::printf("hiccups                   : %lld (%.4f%% of deliveries)\n",
              static_cast<long long>(m.hiccups),
              m.tracks_delivered > 0
                  ? 100.0 * static_cast<double>(m.hiccups) /
                        static_cast<double>(m.tracks_delivered +
                                            m.hiccups)
                  : 0.0);
  std::printf("parity reconstructions    : %lld\n",
              static_cast<long long>(m.reconstructed));
  std::printf("catastrophic failure      : %s\n",
              server->CatastrophicFailure() ? "YES" : "no");
  std::printf("buffer peak               : %lld tracks (%.1f MB)\n",
              static_cast<long long>(
                  server->scheduler().buffer_pool().peak_in_use()),
              static_cast<double>(
                  server->scheduler().buffer_pool().peak_in_use()) *
                  config.params.disk.track_mb);
  return 0;
}
