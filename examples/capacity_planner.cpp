// Capacity planner: the Section 5 "simple system design work" as a tool.
// Given a working set size, a required stream count and component
// prices, it sizes every scheme (disks, parity group size, memory) and
// recommends the cheapest design that meets the requirements.
//
//   $ ./capacity_planner [working_set_gb] [required_streams]
//
// Defaults reproduce the paper's example: W = 100 GB, 1200 streams.

#include <cstdio>
#include <cstdlib>

#include "model/cost.h"
#include "model/reliability_model.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace ftms;
  DesignParameters design;
  design.working_set_mb =
      (argc > 1 ? std::atof(argv[1]) : 100.0) * 1000.0;
  PlanRequest request;
  request.required_streams = argc > 2 ? std::atof(argv[2]) : 1200.0;

  SystemParameters params;  // Table 1 disks
  params.k_reserve = 5;

  std::printf(
      "Requirements: %.0f GB disk-resident working set, %.0f concurrent "
      "MPEG-1 streams.\nPrices: disk %.2f $/MB, memory %.2f $/MB "
      "(1995-calibrated).\n\n",
      design.working_set_mb / 1000.0, request.required_streams,
      design.disk_cost_per_mb, design.memory_cost_per_mb);

  const std::vector<DesignPoint> plans =
      PlanAllSchemes(design, params, request);
  if (plans.empty()) {
    std::printf("No scheme can meet these requirements with C <= %d.\n",
                request.max_group_size);
    return 1;
  }

  std::printf("%-22s %4s %6s %10s %10s %12s %14s %14s\n", "Scheme", "C",
              "disks", "streams", "RAM (MB)", "cost ($)", "MTTF (yrs)",
              "MTTDS (yrs)");
  for (const DesignPoint& point : plans) {
    SystemParameters sized = params;
    sized.num_disks = point.num_disks;
    const double mttf = HoursToYears(
        MttfCatastrophicHours(sized, point.scheme,
                              point.parity_group_size)
            .value());
    const double mttds = HoursToYears(
        MttdsHours(sized, point.scheme, point.parity_group_size).value());
    std::printf("%-22s %4d %6d %10d %10.0f %12.0f %14.0f %14.0f\n",
                std::string(SchemeName(point.scheme)).c_str(),
                point.parity_group_size, point.num_disks,
                point.max_streams, point.buffer_mb, point.cost_dollars,
                mttf, mttds);
  }

  const DesignPoint& best = plans.front();
  std::printf(
      "\nRecommendation: %s with parity groups of %d (%d disks, "
      "$%.0f).\n",
      std::string(SchemeName(best.scheme)).c_str(),
      best.parity_group_size, best.num_disks, best.cost_dollars);
  std::printf(
      "Rule of thumb from the paper: the clustered schemes win when the\n"
      "working-set disks already provide enough bandwidth; "
      "Improved-bandwidth\nwins when streams are scarce relative to "
      "disks (try 1500 streams).\n");
  return 0;
}
