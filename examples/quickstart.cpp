// Quickstart: bring up a fault-tolerant multimedia server, stage a few
// movies, serve streams, survive a disk failure, and read the metrics.
//
//   $ ./quickstart
//
// This walks the whole public API surface: ServerConfig ->
// MultimediaServer -> catalog -> streams -> failure injection -> metrics.

#include <cstdio>

#include "layout/media_object.h"
#include "server/server.h"
#include "util/units.h"

int main() {
  using namespace ftms;

  // 1. Configure a server: 20 disks in parity groups of 5 (4 data + 1
  //    parity per cluster), Streaming RAID scheduling, Table 1 disk
  //    parameters (Seagate-ST31200N-like).
  ServerConfig config;
  config.scheme = Scheme::kStreamingRaid;
  config.parity_group_size = 5;
  config.params.num_disks = 20;
  config.params.k_reserve = 2;

  auto server_or = MultimediaServer::Create(config);
  if (!server_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_or);
  std::printf("server up: %s\n", server->Summary().c_str());

  // 2. Stage short MPEG-1 clips onto the disk working set. (MakeMovie
  //    sizes full 90-minute features; a 1-minute clip keeps the demo
  //    fast.)
  for (int i = 0; i < 3; ++i) {
    const MediaObject clip = MakeMovie(
        i, "clip_" + std::to_string(i), /*minutes=*/1.0,
        config.params.object_rate_mb_s, config.params.disk.track_mb);
    if (Status s = server->AddObject(clip); !s.ok()) {
      std::fprintf(stderr, "stage failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("staged %-8s (%lld tracks, %.0f s of video)\n",
                clip.name.c_str(), static_cast<long long>(clip.num_tracks),
                clip.DurationSeconds(config.params.disk.track_mb));
  }

  // 3. Start viewers. Admission control enforces the analytical stream
  //    capacity (equation (8)), guaranteeing every admitted stream its
  //    real-time schedule.
  std::printf("admission capacity: %d streams\n",
              server->admission().capacity());
  for (int viewer = 0; viewer < 6; ++viewer) {
    server->StartStream(viewer % 3).value();
  }

  // 4. Play for a while, then lose a disk mid-service.
  server->RunCycles(20);
  std::printf("\nafter 20 cycles: %s\n", server->Summary().c_str());
  server->FailDisk(2).ok();
  std::printf("disk 2 FAILED -- parity reconstruction takes over\n");
  server->RunCycles(40);
  std::printf("after failure:  %s\n", server->Summary().c_str());

  // 5. Repair and drain.
  server->RepairDisk(2).ok();
  server->RunCycles(60);
  std::printf("after repair:   %s\n", server->Summary().c_str());

  const SchedulerMetrics& m = server->scheduler().metrics();
  std::printf(
      "\ntotals: %lld tracks delivered, %lld hiccups, %lld tracks "
      "reconstructed on the fly,\n        buffer peak %lld tracks "
      "(%.1f MB)\n",
      static_cast<long long>(m.tracks_delivered),
      static_cast<long long>(m.hiccups),
      static_cast<long long>(m.reconstructed),
      static_cast<long long>(
          server->scheduler().buffer_pool().peak_in_use()),
      static_cast<double>(server->scheduler().buffer_pool().peak_in_use()) *
          config.params.disk.track_mb);
  std::printf(m.hiccups == 0
                  ? "viewers never noticed the failure. \n"
                  : "some viewers saw hiccups -- see metrics above.\n");
  return 0;
}
